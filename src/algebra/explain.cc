#include "src/algebra/explain.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "src/algebra/typecheck.h"

namespace bagalg {

namespace {

/// "482ns" / "12.3us" / "4.56ms" / "1.20s".
std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.3gus",
                  static_cast<double>(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.3gms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gs",
                  static_cast<double>(ns) / 1e9);
  }
  return buf;
}

/// True iff the subtree rooted at `e` contains a powerset/powerbag node.
/// Memoized by node identity: derived-operator expansions share subtrees.
bool SubtreeHasPowerset(const Expr& e,
                        std::map<const ExprNode*, bool>& memo) {
  auto it = memo.find(e.raw());
  if (it != memo.end()) return it->second;
  const ExprNode& n = e.node();
  bool has =
      n.kind == ExprKind::kPowerset || n.kind == ExprKind::kPowerbag;
  for (const Expr& c : n.children) {
    if (has) break;
    has = SubtreeHasPowerset(c, memo);
  }
  memo[e.raw()] = has;
  return has;
}

/// Everything Render threads through the recursion besides position.
struct RenderContext {
  explicit RenderContext(const std::map<const ExprNode*, Type>& t)
      : types(t) {}

  const std::map<const ExprNode*, Type>& types;
  const NodeProfileMap* profiles = nullptr;
  const NodeAnnotator* annotator = nullptr;
  std::map<const ExprNode*, bool> pow_memo;
};

void Render(const Expr& e, RenderContext& ctx, int indent,
            size_t binder_depth, std::ostringstream& os) {
  const std::map<const ExprNode*, Type>& types = ctx.types;
  const NodeProfileMap* profiles = ctx.profiles;
  const ExprNode& n = e.node();
  os << std::string(static_cast<size_t>(indent) * 2, ' ');
  switch (n.kind) {
    case ExprKind::kInput:
      os << "input " << n.name;
      break;
    case ExprKind::kConst:
      os << "const " << n.literal->ToString();
      break;
    case ExprKind::kVar:
      os << "var v" << (binder_depth - 1 - n.index);
      break;
    case ExprKind::kAttrProj:
      os << "proj #" << n.index;
      break;
    case ExprKind::kNest:
    case ExprKind::kUnnest: {
      os << ExprKindName(n.kind) << " attrs=[";
      for (size_t i = 0; i < n.attrs.size(); ++i) {
        os << (i ? ", " : "") << n.attrs[i];
      }
      os << "]";
      break;
    }
    default:
      os << ExprKindName(n.kind);
      break;
  }
  auto it = types.find(e.raw());
  if (it != types.end()) {
    os << " : " << it->second.ToString();
  }
  if (n.kind == ExprKind::kPowerset || n.kind == ExprKind::kPowerbag) {
    os << " [powerset]";
  } else if (SubtreeHasPowerset(e, ctx.pow_memo)) {
    os << " [powerset inside]";
  }
  if (ctx.annotator != nullptr) {
    os << (*ctx.annotator)(e.raw());
  }
  if (profiles != nullptr) {
    auto pit = profiles->find(e.raw());
    if (pit != profiles->end()) {
      const NodeProfile& p = pit->second;
      os << " (calls=" << p.calls << " time=" << FormatNs(p.wall_ns);
      if (it != types.end() && it->second.IsBag()) {
        os << " rows=" << p.max_distinct;
        if (p.max_total != p.max_distinct) {
          os << " max_total=" << p.max_total;
        }
      }
      os << ")";
    } else {
      os << " (never executed)";
    }
  }
  os << "\n";
  // Children: lambda bodies get a label and an extra binder; leafish
  // bodies are rendered inline to keep plans compact.
  for (size_t i = 0; i < n.children.size(); ++i) {
    int binders = BindersIntroduced(n.kind, i);
    const char* label = nullptr;
    if (n.kind == ExprKind::kMap && i == 0) label = "body";
    if (n.kind == ExprKind::kSelect && i == 0) label = "lhs";
    if (n.kind == ExprKind::kSelect && i == 1) label = "rhs";
    if ((n.kind == ExprKind::kIfp || n.kind == ExprKind::kBoundedIfp) &&
        i == 0) {
      label = "step";
    }
    if (n.kind == ExprKind::kBoundedIfp && i == 2) label = "bound";
    if (label != nullptr) {
      os << std::string(static_cast<size_t>(indent + 1) * 2, ' ') << label
         << ":\n";
      Render(n.children[i], ctx, indent + 2,
             binder_depth + static_cast<size_t>(binders), os);
      continue;
    }
    Render(n.children[i], ctx, indent + 1,
           binder_depth + static_cast<size_t>(binders), os);
  }
}

}  // namespace

Result<std::string> ExplainExpr(const Expr& expr, const Schema& schema) {
  std::map<const ExprNode*, Type> types;
  BAGALG_RETURN_IF_ERROR(AnalyzeExpr(expr, schema, &types).status());
  std::ostringstream os;
  RenderContext ctx{types};
  Render(expr, ctx, 0, 0, os);
  return os.str();
}

Result<std::string> ExplainExprAnnotated(const Expr& expr,
                                         const Schema& schema,
                                         const NodeAnnotator& annotator) {
  std::map<const ExprNode*, Type> types;
  BAGALG_RETURN_IF_ERROR(AnalyzeExpr(expr, schema, &types).status());
  std::ostringstream os;
  RenderContext ctx{types};
  ctx.annotator = &annotator;
  Render(expr, ctx, 0, 0, os);
  return os.str();
}

Result<std::string> ExplainAnalyzeExpr(const Expr& expr, const Database& db,
                                       Evaluator& evaluator) {
  std::map<const ExprNode*, Type> types;
  BAGALG_RETURN_IF_ERROR(AnalyzeExpr(expr, db.schema(), &types).status());
  bool was_profiling = evaluator.node_profiling();
  evaluator.set_node_profiling(true);
  Result<Value> result = evaluator.Eval(expr, db);
  evaluator.set_node_profiling(was_profiling);
  BAGALG_RETURN_IF_ERROR(result.status());
  std::ostringstream os;
  RenderContext ctx{types};
  ctx.profiles = &evaluator.node_profiles();
  Render(expr, ctx, 0, 0, os);
  if (result.value().IsBag()) {
    const Bag& bag = result.value().bag();
    os << "result: " << bag.DistinctCount() << " distinct, total "
       << bag.TotalCount() << "\n";
  }
  return os.str();
}

}  // namespace bagalg
