#include "src/algebra/explain.h"

#include <map>
#include <sstream>

#include "src/algebra/typecheck.h"

namespace bagalg {

namespace {

void Render(const Expr& e,
            const std::map<const ExprNode*, Type>& types, int indent,
            size_t binder_depth, std::ostringstream& os) {
  const ExprNode& n = e.node();
  os << std::string(static_cast<size_t>(indent) * 2, ' ');
  switch (n.kind) {
    case ExprKind::kInput:
      os << "input " << n.name;
      break;
    case ExprKind::kConst:
      os << "const " << n.literal->ToString();
      break;
    case ExprKind::kVar:
      os << "var v" << (binder_depth - 1 - n.index);
      break;
    case ExprKind::kAttrProj:
      os << "proj #" << n.index;
      break;
    case ExprKind::kNest:
    case ExprKind::kUnnest: {
      os << ExprKindName(n.kind) << " attrs=[";
      for (size_t i = 0; i < n.attrs.size(); ++i) {
        os << (i ? ", " : "") << n.attrs[i];
      }
      os << "]";
      break;
    }
    default:
      os << ExprKindName(n.kind);
      break;
  }
  auto it = types.find(e.raw());
  if (it != types.end()) {
    os << " : " << it->second.ToString();
  }
  os << "\n";
  // Children: lambda bodies get a label and an extra binder; leafish
  // bodies are rendered inline to keep plans compact.
  for (size_t i = 0; i < n.children.size(); ++i) {
    int binders = BindersIntroduced(n.kind, i);
    const char* label = nullptr;
    if (n.kind == ExprKind::kMap && i == 0) label = "body";
    if (n.kind == ExprKind::kSelect && i == 0) label = "lhs";
    if (n.kind == ExprKind::kSelect && i == 1) label = "rhs";
    if ((n.kind == ExprKind::kIfp || n.kind == ExprKind::kBoundedIfp) &&
        i == 0) {
      label = "step";
    }
    if (n.kind == ExprKind::kBoundedIfp && i == 2) label = "bound";
    if (label != nullptr) {
      os << std::string(static_cast<size_t>(indent + 1) * 2, ' ') << label
         << ":\n";
      Render(n.children[i], types, indent + 2,
             binder_depth + static_cast<size_t>(binders), os);
      continue;
    }
    Render(n.children[i], types, indent + 1,
           binder_depth + static_cast<size_t>(binders), os);
  }
}

}  // namespace

Result<std::string> ExplainExpr(const Expr& expr, const Schema& schema) {
  std::map<const ExprNode*, Type> types;
  BAGALG_RETURN_IF_ERROR(AnalyzeExpr(expr, schema, &types).status());
  std::ostringstream os;
  Render(expr, types, 0, 0, os);
  return os.str();
}

}  // namespace bagalg
