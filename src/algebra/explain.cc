#include "src/algebra/explain.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "src/algebra/typecheck.h"

namespace bagalg {

namespace {

/// "482ns" / "12.3us" / "4.56ms" / "1.20s".
std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.3gus",
                  static_cast<double>(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.3gms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gs",
                  static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void Render(const Expr& e,
            const std::map<const ExprNode*, Type>& types,
            const NodeProfileMap* profiles, int indent,
            size_t binder_depth, std::ostringstream& os) {
  const ExprNode& n = e.node();
  os << std::string(static_cast<size_t>(indent) * 2, ' ');
  switch (n.kind) {
    case ExprKind::kInput:
      os << "input " << n.name;
      break;
    case ExprKind::kConst:
      os << "const " << n.literal->ToString();
      break;
    case ExprKind::kVar:
      os << "var v" << (binder_depth - 1 - n.index);
      break;
    case ExprKind::kAttrProj:
      os << "proj #" << n.index;
      break;
    case ExprKind::kNest:
    case ExprKind::kUnnest: {
      os << ExprKindName(n.kind) << " attrs=[";
      for (size_t i = 0; i < n.attrs.size(); ++i) {
        os << (i ? ", " : "") << n.attrs[i];
      }
      os << "]";
      break;
    }
    default:
      os << ExprKindName(n.kind);
      break;
  }
  auto it = types.find(e.raw());
  if (it != types.end()) {
    os << " : " << it->second.ToString();
  }
  if (n.kind == ExprKind::kPowerset || n.kind == ExprKind::kPowerbag) {
    os << " [powerset]";
  }
  if (profiles != nullptr) {
    auto pit = profiles->find(e.raw());
    if (pit != profiles->end()) {
      const NodeProfile& p = pit->second;
      os << " (calls=" << p.calls << " time=" << FormatNs(p.wall_ns);
      if (it != types.end() && it->second.IsBag()) {
        os << " rows=" << p.max_distinct;
        if (p.max_total != p.max_distinct) {
          os << " max_total=" << p.max_total;
        }
      }
      os << ")";
    } else {
      os << " (never executed)";
    }
  }
  os << "\n";
  // Children: lambda bodies get a label and an extra binder; leafish
  // bodies are rendered inline to keep plans compact.
  for (size_t i = 0; i < n.children.size(); ++i) {
    int binders = BindersIntroduced(n.kind, i);
    const char* label = nullptr;
    if (n.kind == ExprKind::kMap && i == 0) label = "body";
    if (n.kind == ExprKind::kSelect && i == 0) label = "lhs";
    if (n.kind == ExprKind::kSelect && i == 1) label = "rhs";
    if ((n.kind == ExprKind::kIfp || n.kind == ExprKind::kBoundedIfp) &&
        i == 0) {
      label = "step";
    }
    if (n.kind == ExprKind::kBoundedIfp && i == 2) label = "bound";
    if (label != nullptr) {
      os << std::string(static_cast<size_t>(indent + 1) * 2, ' ') << label
         << ":\n";
      Render(n.children[i], types, profiles, indent + 2,
             binder_depth + static_cast<size_t>(binders), os);
      continue;
    }
    Render(n.children[i], types, profiles, indent + 1,
           binder_depth + static_cast<size_t>(binders), os);
  }
}

}  // namespace

Result<std::string> ExplainExpr(const Expr& expr, const Schema& schema) {
  std::map<const ExprNode*, Type> types;
  BAGALG_RETURN_IF_ERROR(AnalyzeExpr(expr, schema, &types).status());
  std::ostringstream os;
  Render(expr, types, nullptr, 0, 0, os);
  return os.str();
}

Result<std::string> ExplainAnalyzeExpr(const Expr& expr, const Database& db,
                                       Evaluator& evaluator) {
  std::map<const ExprNode*, Type> types;
  BAGALG_RETURN_IF_ERROR(AnalyzeExpr(expr, db.schema(), &types).status());
  bool was_profiling = evaluator.node_profiling();
  evaluator.set_node_profiling(true);
  Result<Value> result = evaluator.Eval(expr, db);
  evaluator.set_node_profiling(was_profiling);
  BAGALG_RETURN_IF_ERROR(result.status());
  std::ostringstream os;
  Render(expr, types, &evaluator.node_profiles(), 0, 0, os);
  if (result.value().IsBag()) {
    const Bag& bag = result.value().bag();
    os << "result: " << bag.DistinctCount() << " distinct, total "
       << bag.TotalCount() << "\n";
  }
  return os.str();
}

}  // namespace bagalg
