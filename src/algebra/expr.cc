#include "src/algebra/expr.h"

#include <cassert>
#include <sstream>

#include "src/algebra/builder.h"

namespace bagalg {

const char* ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kInput:
      return "input";
    case ExprKind::kConst:
      return "const";
    case ExprKind::kVar:
      return "var";
    case ExprKind::kAdditiveUnion:
      return "uplus";
    case ExprKind::kSubtract:
      return "monus";
    case ExprKind::kMaxUnion:
      return "umax";
    case ExprKind::kIntersect:
      return "inter";
    case ExprKind::kProduct:
      return "prod";
    case ExprKind::kTupling:
      return "tup";
    case ExprKind::kBagging:
      return "bag";
    case ExprKind::kPowerset:
      return "pow";
    case ExprKind::kPowerbag:
      return "powbag";
    case ExprKind::kBagDestroy:
      return "flat";
    case ExprKind::kDupElim:
      return "dedup";
    case ExprKind::kAttrProj:
      return "proj";
    case ExprKind::kMap:
      return "map";
    case ExprKind::kSelect:
      return "sel";
    case ExprKind::kNest:
      return "nest";
    case ExprKind::kUnnest:
      return "unnest";
    case ExprKind::kIfp:
      return "ifp";
    case ExprKind::kBoundedIfp:
      return "bifp";
  }
  return "?";
}

int BindersIntroduced(ExprKind kind, size_t child_index) {
  switch (kind) {
    case ExprKind::kMap:
      return child_index == 0 ? 1 : 0;  // body binds the element
    case ExprKind::kSelect:
      return child_index <= 1 ? 1 : 0;  // lhs and rhs bind the element
    case ExprKind::kIfp:
      return child_index == 0 ? 1 : 0;  // body binds the iterate
    case ExprKind::kBoundedIfp:
      return child_index == 0 ? 1 : 0;
    default:
      return 0;
  }
}

size_t ExprSize(const Expr& expr) {
  size_t n = 1;
  for (const Expr& child : expr->children) n += ExprSize(child);
  return n;
}

namespace {

/// Renders with explicit binder names v<depth>. `depth` is the number of
/// binders in scope.
void Render(const Expr& expr, size_t depth, std::ostream& os) {
  const ExprNode& n = expr.node();
  switch (n.kind) {
    case ExprKind::kInput:
      os << n.name;
      return;
    case ExprKind::kConst:
      os << "'" << n.literal->ToString();
      return;
    case ExprKind::kVar:
      // Var(k) refers to binder at depth - 1 - k (named when introduced).
      assert(n.index < depth);
      os << "v" << (depth - 1 - n.index);
      return;
    case ExprKind::kAttrProj:
      os << "proj(" << n.index << ", ";
      Render(n.children[0], depth, os);
      os << ")";
      return;
    case ExprKind::kMap:
      os << "map(v" << depth << " -> ";
      Render(n.children[0], depth + 1, os);
      os << ", ";
      Render(n.children[1], depth, os);
      os << ")";
      return;
    case ExprKind::kSelect:
      os << "sel(v" << depth << " -> ";
      Render(n.children[0], depth + 1, os);
      os << " == ";
      Render(n.children[1], depth + 1, os);
      os << ", ";
      Render(n.children[2], depth, os);
      os << ")";
      return;
    case ExprKind::kIfp:
      os << "ifp(v" << depth << " -> ";
      Render(n.children[0], depth + 1, os);
      os << ", ";
      Render(n.children[1], depth, os);
      os << ")";
      return;
    case ExprKind::kBoundedIfp:
      os << "bifp(v" << depth << " -> ";
      Render(n.children[0], depth + 1, os);
      os << ", ";
      Render(n.children[1], depth, os);
      os << ", ";
      Render(n.children[2], depth, os);
      os << ")";
      return;
    case ExprKind::kNest:
    case ExprKind::kUnnest: {
      os << ExprKindName(n.kind) << "([";
      for (size_t i = 0; i < n.attrs.size(); ++i) {
        if (i > 0) os << ", ";
        os << n.attrs[i];
      }
      os << "], ";
      Render(n.children[0], depth, os);
      os << ")";
      return;
    }
    default: {
      os << ExprKindName(n.kind) << "(";
      for (size_t i = 0; i < n.children.size(); ++i) {
        if (i > 0) os << ", ";
        Render(n.children[i], depth, os);
      }
      os << ")";
      return;
    }
  }
}

Expr MakeNode(ExprNode node) {
  return Expr(std::make_shared<const ExprNode>(std::move(node)));
}

Expr MakeOp(ExprKind kind, std::vector<Expr> children) {
  ExprNode node;
  node.kind = kind;
  node.children = std::move(children);
  return MakeNode(std::move(node));
}

}  // namespace

std::string Expr::ToString() const {
  std::ostringstream os;
  Render(*this, 0, os);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Expr& expr) {
  Render(expr, 0, os);
  return os;
}

// ------------------------------------------------------------------ builders

Expr Input(std::string name) {
  ExprNode node;
  node.kind = ExprKind::kInput;
  node.name = std::move(name);
  return MakeNode(std::move(node));
}

Expr ConstExpr(Value literal) {
  ExprNode node;
  node.kind = ExprKind::kConst;
  node.literal = std::move(literal);
  return MakeNode(std::move(node));
}

Expr ConstBag(Bag bag) { return ConstExpr(Value::FromBag(std::move(bag))); }

Expr Var(size_t depth) {
  ExprNode node;
  node.kind = ExprKind::kVar;
  node.index = depth;
  return MakeNode(std::move(node));
}

Expr Uplus(Expr a, Expr b) {
  return MakeOp(ExprKind::kAdditiveUnion, {std::move(a), std::move(b)});
}
Expr Monus(Expr a, Expr b) {
  return MakeOp(ExprKind::kSubtract, {std::move(a), std::move(b)});
}
Expr Umax(Expr a, Expr b) {
  return MakeOp(ExprKind::kMaxUnion, {std::move(a), std::move(b)});
}
Expr Inter(Expr a, Expr b) {
  return MakeOp(ExprKind::kIntersect, {std::move(a), std::move(b)});
}
Expr Product(Expr a, Expr b) {
  return MakeOp(ExprKind::kProduct, {std::move(a), std::move(b)});
}

Expr Tup(std::vector<Expr> fields) {
  return MakeOp(ExprKind::kTupling, std::move(fields));
}
Expr Tup(std::initializer_list<Expr> fields) {
  return Tup(std::vector<Expr>(fields));
}

Expr Beta(Expr e) { return MakeOp(ExprKind::kBagging, {std::move(e)}); }

Expr Proj(Expr e, size_t attr) {
  assert(attr >= 1 && "attribute projection is 1-based");
  ExprNode node;
  node.kind = ExprKind::kAttrProj;
  node.index = attr;
  node.children.push_back(std::move(e));
  return MakeNode(std::move(node));
}

Expr Pow(Expr e) { return MakeOp(ExprKind::kPowerset, {std::move(e)}); }
Expr Powbag(Expr e) { return MakeOp(ExprKind::kPowerbag, {std::move(e)}); }
Expr Destroy(Expr e) { return MakeOp(ExprKind::kBagDestroy, {std::move(e)}); }
Expr Eps(Expr e) { return MakeOp(ExprKind::kDupElim, {std::move(e)}); }

Expr Map(Expr body, Expr source) {
  return MakeOp(ExprKind::kMap, {std::move(body), std::move(source)});
}

Expr Select(Expr lhs, Expr rhs, Expr source) {
  return MakeOp(ExprKind::kSelect,
                {std::move(lhs), std::move(rhs), std::move(source)});
}

Expr ProjectAttrs(Expr source, const std::vector<size_t>& attrs) {
  std::vector<Expr> fields;
  fields.reserve(attrs.size());
  for (size_t a : attrs) fields.push_back(Proj(Var(0), a));
  return Map(Tup(std::move(fields)), std::move(source));
}

Expr ProjectAttrs(Expr source, std::initializer_list<size_t> attrs) {
  return ProjectAttrs(std::move(source), std::vector<size_t>(attrs));
}

Expr NestExpr(Expr source, std::vector<size_t> nested_attrs) {
  ExprNode node;
  node.kind = ExprKind::kNest;
  node.attrs = std::move(nested_attrs);
  node.children.push_back(std::move(source));
  return MakeNode(std::move(node));
}

Expr UnnestExpr(Expr source, size_t attr) {
  ExprNode node;
  node.kind = ExprKind::kUnnest;
  node.attrs = {attr};
  node.children.push_back(std::move(source));
  return MakeNode(std::move(node));
}

Expr Ifp(Expr body, Expr seed) {
  return MakeOp(ExprKind::kIfp, {std::move(body), std::move(seed)});
}

Expr BoundedIfp(Expr body, Expr seed, Expr bound) {
  return MakeOp(ExprKind::kBoundedIfp,
                {std::move(body), std::move(seed), std::move(bound)});
}

}  // namespace bagalg
