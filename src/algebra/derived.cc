#include "src/algebra/derived.h"

#include <cassert>

namespace bagalg {

Expr ShiftVars(const Expr& expr, size_t cutoff, size_t delta) {
  const ExprNode& n = expr.node();
  if (n.kind == ExprKind::kVar) {
    if (n.index >= cutoff) return Var(n.index + delta);
    return expr;
  }
  if (n.children.empty()) return expr;
  ExprNode out = n;
  for (size_t i = 0; i < n.children.size(); ++i) {
    size_t child_cutoff =
        cutoff + static_cast<size_t>(BindersIntroduced(n.kind, i));
    out.children[i] = ShiftVars(n.children[i], child_cutoff, delta);
  }
  return Expr(std::make_shared<const ExprNode>(std::move(out)));
}

// ----------------------------------------------------------------- integers

Bag IntAsBag(uint64_t n, const Value& unit) {
  return NCopies(Mult(n), Value::Tuple({unit}));
}

Expr IntConst(uint64_t n, const Value& unit) {
  return ConstBag(IntAsBag(n, unit));
}

Expr CardAsInt(Expr e, const Value& unit) {
  // MAP λx.[unit] (e): |e| occurrences of the tuple [unit].
  return Map(Tup({ConstExpr(unit)}), std::move(e));
}

// --------------------------------------------------------------- aggregates

Expr CountAgg(Expr b, const Value& unit) {
  return CardAsInt(std::move(b), unit);
}

Expr SumAgg(Expr b) { return Destroy(std::move(b)); }

Expr AverageAgg(Expr b, const Value& unit) {
  Expr sum = SumAgg(b);
  Expr count = CountAgg(b, unit);
  // σ_{λx. |x × count(B)| = |sum(B)|}(P(sum(B))): the subbags of the sum
  // whose cardinality times the element count equals the sum. There is one
  // such cardinality (the average) but possibly many subbags of it, so the
  // solutions are normalized to integer bags, deduplicated, and unwrapped.
  Expr lhs = CardAsInt(Product(Var(0), ShiftVars(count, 0, 1)), unit);
  Expr rhs = CardAsInt(ShiftVars(sum, 0, 1), unit);
  Expr solutions = Select(std::move(lhs), std::move(rhs), Pow(sum));
  Expr normalized = Map(CardAsInt(Var(0), unit), std::move(solutions));
  return Destroy(Eps(std::move(normalized)));
}

// ---------------------------------------------------- boolean-style queries

Expr BoolTest(Expr lhs, Expr rhs, const Value& unit) {
  Bag witness = MakeBagOf({Value::Tuple({unit})});
  return Select(ShiftVars(lhs, 0, 1), ShiftVars(rhs, 0, 1),
                ConstBag(std::move(witness)));
}

std::pair<Expr, Expr> MemberTestPair(Expr elem, Expr bag) {
  Expr lhs = Inter(Beta(elem), Eps(std::move(bag)));
  Expr rhs = Beta(std::move(elem));
  return {std::move(lhs), std::move(rhs)};
}

std::pair<Expr, Expr> SubbagTestPair(Expr sub, Expr super) {
  Expr lhs = Inter(sub, std::move(super));
  return {std::move(lhs), std::move(sub)};
}

// ------------------------------------------------- §4 counting comparisons

Expr CardGreater(Expr r, Expr s) {
  Expr rr = ProjectAttrs(Product(r, r), {1});
  Expr rs = ProjectAttrs(Product(std::move(r), std::move(s)), {1});
  return Monus(std::move(rr), std::move(rs));
}

Expr CardEqual(Expr r, Expr s, const Value& unit) {
  return BoolTest(CardAsInt(std::move(r), unit),
                  CardAsInt(std::move(s), unit), unit);
}

Expr AtLeastDistinct(Expr r, uint64_t i, const Value& unit) {
  if (i == 0) return IntConst(1, unit);  // vacuously true, one witness
  return Monus(CardAsInt(Eps(std::move(r)), unit), IntConst(i - 1, unit));
}

Expr AtLeastTotal(Expr r, uint64_t i, const Value& unit) {
  if (i == 0) return IntConst(1, unit);
  return Monus(CardAsInt(std::move(r), unit), IntConst(i - 1, unit));
}

Expr InDegreeGreaterThanOut(Expr g, const Value& node) {
  // π2(σ_{2=node}(G)) − π1(σ_{1=node}(G)): both sides normalize to copies
  // of [node], counted by in- and out-degree respectively (Example 4.1).
  Expr in_side = ProjectAttrs(
      Select(Proj(Var(0), 2), ConstExpr(node), g), {2});
  Expr out_side = ProjectAttrs(
      Select(Proj(Var(0), 1), ConstExpr(node), std::move(g)), {1});
  return Monus(std::move(in_side), std::move(out_side));
}

Expr EvenCardinalityWithOrder(Expr r, Expr leq, const Value& unit) {
  // §4: σ_{λx. |σ_{λy. y ≤ x}(R)| = |σ_{λy. x < y}(R)|}(R) ≠ ∅.
  // Inside the outer binder x (depth 1 within the inner σ bodies):
  Expr r_in_x = ShiftVars(r, 0, 1);        // R under binder x
  Expr leq_in_xy = ShiftVars(leq, 0, 2);   // Leq under binders x, y
  // The pair [y.1, x.1] as seen inside the inner σ (y = Var(0), x = Var(1)).
  Expr pair = Tup({Proj(Var(0), 1), Proj(Var(1), 1)});
  // y ≤ x : [y.1, x.1] ∈ Leq.
  auto [le_lhs, le_rhs] = MemberTestPair(pair, leq_in_xy);
  Expr below_or_eq = Select(std::move(le_lhs), std::move(le_rhs), r_in_x);
  // x < y : [y.1, x.1] ∉ Leq (total order). Emptiness test via β(t)∩ε(Leq)
  // compared with the empty bag β(t) − β(t).
  Expr not_le_lhs = Inter(Beta(pair), Eps(ShiftVars(leq, 0, 2)));
  Expr not_le_rhs = Monus(Beta(pair), Beta(pair));
  Expr above = Select(std::move(not_le_lhs), std::move(not_le_rhs), r_in_x);
  Expr lhs = CardAsInt(std::move(below_or_eq), unit);
  Expr rhs = CardAsInt(std::move(above), unit);
  return Select(std::move(lhs), std::move(rhs), std::move(r));
}

// ------------------------------------------ §3 operator interdefinability

Expr UplusViaMaxUnion(Expr b1, Expr b2, size_t arity, const Value& tag_a,
                      const Value& tag_b) {
  assert(!(tag_a == tag_b) && "tags must be distinct constants");
  Expr tagged1 = Product(std::move(b1), ConstBag(MakeBagOf({
                                            Value::Tuple({tag_a})})));
  Expr tagged2 = Product(std::move(b2), ConstBag(MakeBagOf({
                                            Value::Tuple({tag_b})})));
  std::vector<size_t> attrs;
  for (size_t i = 1; i <= arity; ++i) attrs.push_back(i);
  return ProjectAttrs(Umax(std::move(tagged1), std::move(tagged2)), attrs);
}

Expr MonusViaPowerset(Expr b1, Expr b2) {
  // δ(σ_{λx. x ⊎ (B1 ∩ B2) = B1}(P(B1))) (§3).
  Expr b1_in = ShiftVars(b1, 0, 1);
  Expr b2_in = ShiftVars(std::move(b2), 0, 1);
  Expr lhs = Uplus(Var(0), Inter(b1_in, std::move(b2_in)));
  Expr rhs = ShiftVars(b1, 0, 1);
  return Destroy(Select(std::move(lhs), std::move(rhs), Pow(std::move(b1))));
}

Expr EpsViaPowerset(Expr b) {
  // δ(P(B) ∩ MAP β (B)) (Proposition 3.1).
  Expr power = Pow(b);  // copy b before the second use below
  return Destroy(Inter(std::move(power), Map(Beta(Var(0)), std::move(b))));
}

Expr EpsViaPowersetNested(Expr b) {
  // P(δ(B)) ∩ B (Proposition 3.1, nested variant).
  Expr power = Pow(Destroy(b));
  return Inter(std::move(power), std::move(b));
}

// ------------------------------------------------------------ §6 fixpoints

namespace {

/// π_{1,4}(σ_{2=3}(X × G)) — one relational composition step, with X the
/// fixpoint iterate Var(0) and `g` spliced under that binder.
Expr ComposeStep(const Expr& g) {
  Expr prod = Product(Var(0), ShiftVars(g, 0, 1));
  Expr sel = Select(Proj(Var(0), 2), Proj(Var(0), 3), std::move(prod));
  return ProjectAttrs(std::move(sel), {1, 4});
}

}  // namespace

Expr TransitiveClosure(Expr g) {
  // Deduplicate each composition round so multiplicities cannot diverge
  // under the inflationary iteration (bag products multiply counts).
  Expr body = Umax(Var(0), Eps(ComposeStep(g)));
  return Ifp(std::move(body), Eps(std::move(g)));
}

Expr TransitiveClosureBounded(Expr g) {
  Expr body = Umax(Var(0), ComposeStep(g));
  // Bound: the deduplicated pairs over mentioned nodes caps every iterate's
  // multiplicities at 1 — the bounded-fixpoint discipline of [Suc93].
  Expr nodes = Uplus(ProjectAttrs(g, {1}), ProjectAttrs(g, {2}));
  Expr bound = Eps(Product(nodes, nodes));
  return BoundedIfp(std::move(body), g, std::move(bound));
}

// ------------------------------------------------------------ decoding aids

Result<uint64_t> DecodeIntBag(const Bag& bag) {
  return bag.TotalCount().ToUint64();
}

}  // namespace bagalg
