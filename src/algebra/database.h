#ifndef BAGALG_ALGEBRA_DATABASE_H_
#define BAGALG_ALGEBRA_DATABASE_H_

/// \file database.h
/// Bag databases: named bags with a schema (paper §2).
///
/// A bag schema associates bag names with bag types; an instance maps each
/// name to a bag of that type. Queries evaluate expressions against an
/// instance.

#include <map>
#include <string>

#include "src/core/type.h"
#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg {

/// Bag name -> bag type. All types must be bag types.
using Schema = std::map<std::string, Type>;

/// A database instance: named bags conforming to a schema.
class Database {
 public:
  Database() = default;

  /// Adds (or replaces) a bag under `name`; the schema entry is the bag's
  /// own type. InvalidArgument if a declared schema type does not accept
  /// the bag's type.
  Status Put(const std::string& name, Bag bag);

  /// Declares a schema entry without an instance (instance defaults to the
  /// empty bag of that type). InvalidArgument unless `type` is a bag type.
  Status Declare(const std::string& name, Type type);

  /// The bag stored under `name`; NotFound if absent.
  Result<Bag> Get(const std::string& name) const;

  /// The declared type of `name`; NotFound if absent.
  Result<Type> TypeOfInput(const std::string& name) const;

  /// The full schema (for the type checker).
  const Schema& schema() const { return schema_; }

  /// All instances, for iteration in tests and samplers.
  const std::map<std::string, Bag>& instances() const { return instances_; }

 private:
  Schema schema_;
  std::map<std::string, Bag> instances_;
};

}  // namespace bagalg

#endif  // BAGALG_ALGEBRA_DATABASE_H_
