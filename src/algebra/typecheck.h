#ifndef BAGALG_ALGEBRA_TYPECHECK_H_
#define BAGALG_ALGEBRA_TYPECHECK_H_

/// \file typecheck.h
/// Static typing and fragment analysis of BALG expressions.
///
/// The paper stratifies the algebra two ways:
///  * **bag nesting** — BALG^k restricts every type appearing in the
///    expression (inputs, intermediates, output) to bag nesting ≤ k (§4–§6);
///  * **power nesting** — BALG^k_i additionally bounds the number of nested
///    powerset/powerbag applications on any root-to-leaf path (§6), the
///    parameter driving the space hierarchy of Theorem 6.2.
/// AnalyzeExpr computes the output type together with both measures, so
/// experiments can verify, e.g., that the Theorem 6.1 construction for
/// hyper(i) time really has power nesting 2i+2.

#include <map>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/core/type.h"
#include "src/util/result.h"

namespace bagalg {

/// Result of static analysis over one expression.
struct ExprAnalysis {
  /// The expression's output type.
  Type type;
  /// Max bag nesting over the types of all subexpressions (the k such that
  /// the expression lies in BALG^k, inputs included).
  int max_type_nesting = 0;
  /// Max number of powerset/powerbag nodes on a root-to-leaf path (the i of
  /// BALG^k_i).
  int power_nesting = 0;
  /// Total AST nodes.
  size_t node_count = 0;
  /// True iff the expression uses P_b / a fixpoint operator.
  bool uses_powerbag = false;
  bool uses_fixpoint = false;
  /// Occurrences of each operator.
  std::map<ExprKind, size_t> op_counts;
};

/// Computes the output type of `expr` under `schema`. TypeError on any
/// ill-typed application; NotFound for unknown inputs.
Result<Type> TypeOf(const Expr& expr, const Schema& schema);

/// Full analysis (type + fragment measures). If `node_types` is non-null it
/// receives the inferred type of every AST node (keyed by node pointer) —
/// the basis of ExplainExpr.
Result<ExprAnalysis> AnalyzeExpr(
    const Expr& expr, const Schema& schema,
    std::map<const ExprNode*, Type>* node_types = nullptr);

/// OK iff `expr` lies in BALG^k under `schema` (every subexpression type has
/// bag nesting ≤ k). Unsupported with an explanatory message otherwise.
Status CheckFragment(const Expr& expr, const Schema& schema, int k);

/// OK iff `expr` lies in BALG¹: BALG^1 *and* uses none of P, P_b, δ (which
/// are undefined on unnested types; §4).
Status CheckBalg1(const Expr& expr, const Schema& schema);

}  // namespace bagalg

#endif  // BAGALG_ALGEBRA_TYPECHECK_H_
