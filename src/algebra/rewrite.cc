#include "src/algebra/rewrite.h"

#include <optional>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/algebra/typecheck.h"
#include "src/obs/metrics.h"

namespace bagalg {

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.raw() == b.raw()) return true;
  const ExprNode& na = a.node();
  const ExprNode& nb = b.node();
  if (na.kind != nb.kind || na.name != nb.name || na.index != nb.index ||
      na.attrs != nb.attrs) {
    return false;
  }
  if (na.literal.has_value() != nb.literal.has_value()) return false;
  if (na.literal && !(*na.literal == *nb.literal)) return false;
  if (na.children.size() != nb.children.size()) return false;
  for (size_t i = 0; i < na.children.size(); ++i) {
    if (!ExprEquals(na.children[i], nb.children[i])) return false;
  }
  return true;
}

namespace {

bool IsEmptyConst(const Expr& e) {
  return e->kind == ExprKind::kConst && e->literal->IsBag() &&
         e->literal->bag().empty();
}

bool IsSetLikeConst(const Expr& e) {
  return e->kind == ExprKind::kConst && e->literal->IsBag() &&
         e->literal->bag().IsSetLike();
}

/// True iff the subtree references no database input and no variable bound
/// outside it (depth counts binders inside the subtree).
bool IsClosed(const Expr& e, size_t depth) {
  const ExprNode& n = e.node();
  if (n.kind == ExprKind::kInput) return false;
  if (n.kind == ExprKind::kVar) return n.index < depth;
  for (size_t i = 0; i < n.children.size(); ++i) {
    size_t d = depth + static_cast<size_t>(BindersIntroduced(n.kind, i));
    if (!IsClosed(n.children[i], d)) return false;
  }
  return true;
}

/// True iff a σ-predicate body only dereferences its bound tuple through
/// Proj(Var(0), i) with lo <= i <= hi, and never uses Var(0) whole.
/// `depth` tracks nested binders (Var(depth) is the σ's tuple).
bool PredicateAttrsWithin(const Expr& e, size_t depth, size_t lo, size_t hi) {
  const ExprNode& n = e.node();
  if (n.kind == ExprKind::kAttrProj && n.children[0]->kind == ExprKind::kVar &&
      n.children[0]->index == depth) {
    return n.index >= lo && n.index <= hi;
  }
  if (n.kind == ExprKind::kVar && n.index == depth) return false;
  for (size_t i = 0; i < n.children.size(); ++i) {
    size_t d = depth + static_cast<size_t>(BindersIntroduced(n.kind, i));
    if (!PredicateAttrsWithin(n.children[i], d, lo, hi)) return false;
  }
  return true;
}

/// Shifts the attribute indices of Proj(Var(0), i) by -delta (for pushing a
/// right-side predicate onto the right product operand).
Expr ShiftPredicateAttrs(const Expr& e, size_t depth, size_t delta) {
  const ExprNode& n = e.node();
  if (n.kind == ExprKind::kAttrProj && n.children[0]->kind == ExprKind::kVar &&
      n.children[0]->index == depth) {
    ExprNode out = n;
    out.index = n.index - delta;
    return Expr(std::make_shared<const ExprNode>(std::move(out)));
  }
  if (n.children.empty()) return e;
  ExprNode out = n;
  for (size_t i = 0; i < n.children.size(); ++i) {
    size_t d = depth + static_cast<size_t>(BindersIntroduced(n.kind, i));
    out.children[i] = ShiftPredicateAttrs(n.children[i], d, delta);
  }
  return Expr(std::make_shared<const ExprNode>(std::move(out)));
}

class Rewriter {
 public:
  Rewriter(const Schema& schema, const RewriteOptions& options,
           std::map<std::string, size_t>* applied)
      : schema_(schema), options_(options), applied_(applied) {}

  Result<Expr> Run(Expr expr) {
    for (int round = 0; round < options_.max_rounds; ++round) {
      changed_ = false;
      BAGALG_ASSIGN_OR_RETURN(expr, RewriteBottomUp(expr));
      if (!changed_) break;
    }
    return expr;
  }

 private:
  void Note(const char* rule) {
    changed_ = true;
    if (applied_ != nullptr) (*applied_)[rule] += 1;
    // Process-wide rule-fire telemetry (the REPL's \metrics view).
    obs::GlobalMetrics()
        .GetCounter(std::string("rewrite.rule.") + rule)
        ->Increment();
    obs::GlobalMetrics().GetCounter("rewrite.rules_fired")->Increment();
  }

  Result<Expr> RewriteBottomUp(const Expr& expr) {
    const ExprNode& n = expr.node();
    Expr current = expr;
    if (!n.children.empty()) {
      ExprNode out = n;
      bool any = false;
      for (size_t i = 0; i < n.children.size(); ++i) {
        BAGALG_ASSIGN_OR_RETURN(Expr c, RewriteBottomUp(n.children[i]));
        if (c.raw() != n.children[i].raw()) any = true;
        out.children[i] = std::move(c);
      }
      if (any) {
        current = Expr(std::make_shared<const ExprNode>(std::move(out)));
      }
    }
    return RewriteNode(current);
  }

  Result<Expr> RewriteNode(const Expr& expr) {
    if (options_.identities) {
      if (auto r = TryIdentities(expr)) return *r;
    }
    if (options_.push_selections) {
      if (auto r = TrySelectionRules(expr)) return *r;
    }
    if (options_.constant_folding) {
      BAGALG_ASSIGN_OR_RETURN(std::optional<Expr> folded, TryFold(expr));
      if (folded) return *folded;
    }
    return expr;
  }

  std::optional<Expr> TryIdentities(const Expr& expr) {
    const ExprNode& n = expr.node();
    switch (n.kind) {
      case ExprKind::kAdditiveUnion:
      case ExprKind::kMaxUnion:
        if (IsEmptyConst(n.children[0])) {
          Note("union-empty");
          return n.children[1];
        }
        if (IsEmptyConst(n.children[1])) {
          Note("union-empty");
          return n.children[0];
        }
        if (n.kind == ExprKind::kMaxUnion &&
            ExprEquals(n.children[0], n.children[1])) {
          Note("umax-idempotent");
          return n.children[0];
        }
        return std::nullopt;
      case ExprKind::kSubtract:
        if (IsEmptyConst(n.children[1])) {
          Note("monus-empty");
          return n.children[0];
        }
        return std::nullopt;
      case ExprKind::kIntersect:
        if (ExprEquals(n.children[0], n.children[1])) {
          Note("inter-idempotent");
          return n.children[0];
        }
        return std::nullopt;
      case ExprKind::kDupElim: {
        const Expr& child = n.children[0];
        if (child->kind == ExprKind::kDupElim) {
          Note("dedup-dedup");
          return child;
        }
        if (child->kind == ExprKind::kPowerset) {
          // P outputs one occurrence of each subbag; ε is a no-op.
          Note("dedup-pow");
          return child;
        }
        if (IsSetLikeConst(child)) {
          Note("dedup-setlike-const");
          return child;
        }
        return std::nullopt;
      }
      case ExprKind::kBagDestroy: {
        // δ(MAP λx.β(x) (e)) = e.
        const Expr& child = n.children[0];
        if (child->kind == ExprKind::kMap &&
            child->children[0]->kind == ExprKind::kBagging &&
            child->children[0]->children[0]->kind == ExprKind::kVar &&
            child->children[0]->children[0]->index == 0) {
          Note("destroy-map-beta");
          return child->children[1];
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  std::optional<Expr> TrySelectionRules(const Expr& expr) {
    const ExprNode& n = expr.node();
    if (n.kind != ExprKind::kSelect) return std::nullopt;
    const Expr& lhs = n.children[0];
    const Expr& rhs = n.children[1];
    const Expr& src = n.children[2];
    // σ_{φ=φ}: a structurally identical test always holds.
    if (ExprEquals(lhs, rhs)) {
      Note("select-tautology");
      return src;
    }
    switch (src->kind) {
      case ExprKind::kAdditiveUnion:
      case ExprKind::kMaxUnion:
      case ExprKind::kIntersect:
      case ExprKind::kSubtract: {
        // σ distributes over the four multiplicity-pointwise operators.
        ExprNode out;
        out.kind = src->kind;
        out.children = {Select(lhs, rhs, src->children[0]),
                        Select(lhs, rhs, src->children[1])};
        Note("select-distribute");
        return Expr(std::make_shared<const ExprNode>(std::move(out)));
      }
      case ExprKind::kProduct: {
        // Push onto one operand when the predicate only touches its
        // attributes. Requires the operand arities.
        auto left_type = TypeOf(src->children[0], schema_);
        auto right_type = TypeOf(src->children[1], schema_);
        if (!left_type.ok() || !right_type.ok()) return std::nullopt;
        if (!left_type->IsBag() || !left_type->element().IsTuple() ||
            !right_type->IsBag() || !right_type->element().IsTuple()) {
          return std::nullopt;
        }
        size_t k = left_type->element().fields().size();
        size_t m = right_type->element().fields().size();
        if (PredicateAttrsWithin(lhs, 0, 1, k) &&
            PredicateAttrsWithin(rhs, 0, 1, k)) {
          Note("select-push-left");
          return Product(Select(lhs, rhs, src->children[0]),
                         src->children[1]);
        }
        if (PredicateAttrsWithin(lhs, 0, k + 1, k + m) &&
            PredicateAttrsWithin(rhs, 0, k + 1, k + m)) {
          Note("select-push-right");
          return Product(src->children[0],
                         Select(ShiftPredicateAttrs(lhs, 0, k),
                                ShiftPredicateAttrs(rhs, 0, k),
                                src->children[1]));
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  Result<std::optional<Expr>> TryFold(const Expr& expr) {
    const ExprNode& n = expr.node();
    if (n.kind == ExprKind::kConst || n.children.empty()) {
      return std::optional<Expr>();
    }
    // Fixpoints are excluded from folding: they may be expensive even on
    // constants and folding would hide their cost from benchmarks.
    if (n.kind == ExprKind::kIfp || n.kind == ExprKind::kBoundedIfp) {
      return std::optional<Expr>();
    }
    if (!IsClosed(expr, 0)) return std::optional<Expr>();
    Evaluator eval(Limits::Tiny());
    Database empty_db;
    auto v = eval.Eval(expr, empty_db);
    if (!v.ok()) {
      // Folding is best-effort; a budget miss just leaves the node alone,
      // but genuine type errors should still surface at evaluation time,
      // so only swallow resource errors here.
      if (v.status().code() == StatusCode::kResourceExhausted) {
        return std::optional<Expr>();
      }
      return std::optional<Expr>();
    }
    Note("constant-fold");
    return std::optional<Expr>(ConstExpr(std::move(v).value()));
  }

  const Schema& schema_;
  const RewriteOptions& options_;
  std::map<std::string, size_t>* applied_;
  bool changed_ = false;
};

}  // namespace

Result<Expr> Optimize(const Expr& expr, const Schema& schema,
                      const RewriteOptions& options,
                      std::map<std::string, size_t>* applied) {
  Rewriter rewriter(schema, options, applied);
  return rewriter.Run(expr);
}

}  // namespace bagalg
