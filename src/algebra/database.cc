#include "src/algebra/database.h"

namespace bagalg {

Status Database::Put(const std::string& name, Bag bag) {
  auto it = schema_.find(name);
  if (it != schema_.end()) {
    if (!it->second.Accepts(bag.type())) {
      return Status::InvalidArgument(
          "bag of type " + bag.type().ToString() + " does not conform to " +
          name + "'s declared type " + it->second.ToString());
    }
  } else {
    schema_[name] = bag.type();
  }
  instances_[name] = std::move(bag);
  return Status::Ok();
}

Status Database::Declare(const std::string& name, Type type) {
  if (!type.IsBag()) {
    return Status::InvalidArgument("schema entry " + name +
                                   " must have a bag type, got " +
                                   type.ToString());
  }
  schema_[name] = type;
  if (instances_.find(name) == instances_.end()) {
    instances_[name] = Bag(type.element());
  }
  return Status::Ok();
}

Result<Bag> Database::Get(const std::string& name) const {
  auto it = instances_.find(name);
  if (it == instances_.end()) {
    return Status::NotFound("no input bag named '" + name + "'");
  }
  return it->second;
}

Result<Type> Database::TypeOfInput(const std::string& name) const {
  auto it = schema_.find(name);
  if (it == schema_.end()) {
    return Status::NotFound("no schema entry named '" + name + "'");
  }
  return it->second;
}

}  // namespace bagalg
