#ifndef BAGALG_ALGEBRA_REWRITE_H_
#define BAGALG_ALGEBRA_REWRITE_H_

/// \file rewrite.h
/// Algebraic rewriting of BALG expressions.
///
/// §3 of the paper observes that the operators satisfy the classical
/// algebraic laws (associativity/commutativity of ⊎, ∪, ∩; distribution of
/// selection) and that queries over bags can be optimized "in the same
/// spirit as optimization of queries over sets, by pushing down selections".
/// This module implements a rule-driven rewriter:
///
///   * identity elimination      (e ⊎ ∅ → e, ε∘ε → ε, ε∘P → P, δ∘MAPβ → id,
///                                e ∩ e → e, e ∪ e → e)
///   * selection distribution    σ over ⊎, ∪, ∩, −
///   * selection push-down       σ(A × B) → σ'(A) × B when the predicate
///                               only touches A's attributes (needs types,
///                               hence the schema parameter)
///   * constant folding          closed subexpressions are evaluated once
///
/// Every rule preserves bag semantics exactly (multiplicities included);
/// the property suite checks rewritten ≡ original on random databases.

#include <map>
#include <string>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/util/result.h"

namespace bagalg {

/// Structural equality of expression trees (used by idempotence rules and
/// tests).
bool ExprEquals(const Expr& a, const Expr& b);

/// Rewriter configuration.
struct RewriteOptions {
  bool identities = true;
  bool push_selections = true;
  bool constant_folding = true;
  /// Max full bottom-up passes before giving up on reaching a fixpoint.
  int max_rounds = 8;
};

/// Applies the rule set to fixpoint (or max_rounds). `applied`, if non-null,
/// receives rule-name -> application-count.
Result<Expr> Optimize(const Expr& expr, const Schema& schema,
                      const RewriteOptions& options = RewriteOptions{},
                      std::map<std::string, size_t>* applied = nullptr);

}  // namespace bagalg

#endif  // BAGALG_ALGEBRA_REWRITE_H_
