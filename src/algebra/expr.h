#ifndef BAGALG_ALGEBRA_EXPR_H_
#define BAGALG_ALGEBRA_EXPR_H_

/// \file expr.h
/// Abstract syntax of BALG expressions (paper §3).
///
/// An expression denotes a complex object — usually a bag, but lambda bodies
/// inside MAP/σ may denote atoms or tuples. Lambdas are represented with de
/// Bruijn indices: `Var(0)` is the argument of the innermost enclosing
/// binder (MAP body, σ operand, or fixpoint body), `Var(1)` the next one
/// out, and so on. The fluent construction API in builder.h hides the
/// indices; the surface syntax in src/lang uses names.
///
/// Expressions are immutable shared trees. ToString renders the surface
/// syntax accepted by the parser (round-trip tested).

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/value.h"

namespace bagalg {

/// Operator tags. The comment gives the paper's notation.
enum class ExprKind {
  kInput,          ///< named database bag B
  kConst,          ///< literal complex object
  kVar,            ///< lambda-bound variable (de Bruijn)
  kAdditiveUnion,  ///< ⊎  (paper ∪+)
  kSubtract,       ///< −  (monus)
  kMaxUnion,       ///< ∪
  kIntersect,      ///< ∩
  kProduct,        ///< ×  (Cartesian product of tuple bags)
  kTupling,        ///< τ(o1,...,ok)
  kBagging,        ///< β(o)
  kPowerset,       ///< P
  kPowerbag,       ///< P_b (Definition 5.1)
  kBagDestroy,     ///< δ
  kDupElim,        ///< ε
  kAttrProj,       ///< α_i (1-based, on a tuple-denoting expression)
  kMap,            ///< MAP φ
  kSelect,         ///< σ_{φ=φ'}
  kNest,           ///< nest (extension, §7)
  kUnnest,         ///< unnest (extension)
  kIfp,            ///< inflationary fixpoint (Theorem 6.6)
  kBoundedIfp,     ///< bounded fixpoint [Suc93] (§6 end)
};

/// Number of ExprKind enumerators. Keep in sync when adding operators —
/// EvalStats and other per-kind tables are sized (and static_asserted)
/// against this.
inline constexpr size_t kExprKindCount =
    static_cast<size_t>(ExprKind::kBoundedIfp) + 1;

/// Human-readable operator name ("uplus", "pow", ...), matching the surface
/// syntax keyword where one exists.
const char* ExprKindName(ExprKind kind);

class ExprNode;

/// Shared-immutable handle to an expression tree.
class Expr {
 public:
  /// Default-constructs an empty handle; using it is a programming error.
  Expr() = default;
  explicit Expr(std::shared_ptr<const ExprNode> node)
      : node_(std::move(node)) {}

  /// True iff the handle points at a node.
  bool IsValid() const { return node_ != nullptr; }

  const ExprNode& node() const { return *node_; }
  const ExprNode* operator->() const { return node_.get(); }

  /// Pointer identity (used for analysis caches).
  const ExprNode* raw() const { return node_.get(); }

  /// Renders the surface syntax (parseable by bagalg::lang::ParseExpr).
  std::string ToString() const;

 private:
  std::shared_ptr<const ExprNode> node_;
};

/// One AST node. Fields beyond `kind` are meaningful per-kind:
///  - kInput: name
///  - kConst: literal
///  - kVar: index (de Bruijn depth)
///  - kAttrProj: index (1-based attribute), children[0]
///  - kNest/kUnnest: attrs (1-based), children[0]
///  - kMap: children = {body, source}; body binds one variable
///  - kSelect: children = {lhs, rhs, source}; lhs/rhs bind one variable
///  - kIfp: children = {body, seed}; body binds the iterate
///  - kBoundedIfp: children = {body, seed, bound}; body binds the iterate
///  - other operators: children are the operands in order
class ExprNode {
 public:
  ExprKind kind;
  std::vector<Expr> children;
  std::string name;            // kInput
  std::optional<Value> literal;  // kConst
  size_t index = 0;            // kVar depth or kAttrProj attribute (1-based)
  std::vector<size_t> attrs;   // kNest / kUnnest (1-based)
};

/// How many variables a child position binds: MAP body, σ lhs/rhs, and
/// fixpoint bodies each introduce one binder; all other positions zero.
int BindersIntroduced(ExprKind kind, size_t child_index);

/// Number of AST nodes (lambda bodies included).
size_t ExprSize(const Expr& expr);

std::ostream& operator<<(std::ostream& os, const Expr& expr);

}  // namespace bagalg

#endif  // BAGALG_ALGEBRA_EXPR_H_
