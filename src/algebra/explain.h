#ifndef BAGALG_ALGEBRA_EXPLAIN_H_
#define BAGALG_ALGEBRA_EXPLAIN_H_

/// \file explain.h
/// EXPLAIN for BALG queries: a typed operator-tree rendering.
///
/// Produces the classical database plan view — one operator per line,
/// children indented, each node annotated with its static type and the
/// fragment-relevant facts (powerset nodes flagged, binder introductions
/// shown). Used by the REPL's `explain` command and handy in tests when a
/// generated expression misbehaves.

#include <functional>
#include <string>

#include "src/algebra/database.h"
#include "src/algebra/eval.h"
#include "src/algebra/expr.h"
#include "src/util/result.h"

namespace bagalg {

/// Renders an explanation tree, e.g.:
///
///   map: {{[U]}}
///     body: tup(proj(1, v0))
///     sel: {{[U, U]}}
///       lhs: proj(1, v0) == 'alice
///       input B: {{[U, U]}}
///
/// Powerset/powerbag nodes — the operators with exponential output — are
/// flagged with a [powerset] marker; every ancestor of one (including the
/// expansions of derived operators like monus-via-powerset) is flagged
/// [powerset inside], so the exponential core is visible from the plan root.
///
/// TypeError/NotFound if the expression does not typecheck under `schema`.
Result<std::string> ExplainExpr(const Expr& expr, const Schema& schema);

/// Hook appending extra per-node text to an explain line. Called with each
/// rendered node; the returned string (usually " [..]", empty for none) is
/// placed after the type and powerset markers. The basis of the analysis
/// layer's EXPLAIN COST.
using NodeAnnotator = std::function<std::string(const ExprNode*)>;

/// ExplainExpr with a per-node annotation hook.
Result<std::string> ExplainExprAnnotated(const Expr& expr,
                                         const Schema& schema,
                                         const NodeAnnotator& annotator);

/// EXPLAIN ANALYZE: evaluates `expr` against `db` with per-node profiling
/// on `evaluator`, then renders the explain tree annotated with actual
/// behavior — calls, cumulative wall time (children included), and the
/// largest intermediate bag each node produced:
///
///   map : {{[U]}} (calls=1 time=1.2ms rows=64 max_total=80)
///
/// The evaluator's stats and node profiles are left holding the run's data
/// (callers may ResetStats first for a clean per-query view). Evaluation
/// errors are returned as-is.
Result<std::string> ExplainAnalyzeExpr(const Expr& expr, const Database& db,
                                       Evaluator& evaluator);

}  // namespace bagalg

#endif  // BAGALG_ALGEBRA_EXPLAIN_H_
