#include "src/algebra/typecheck.h"

#include <algorithm>
#include <vector>

namespace bagalg {

namespace {

/// Recursive checker carrying the binder type stack and accumulating the
/// analysis. Returns the node's type.
class Checker {
 public:
  Checker(const Schema& schema, std::map<const ExprNode*, Type>* node_types)
      : schema_(schema), node_types_(node_types) {}

  Result<Type> Check(const Expr& expr, ExprAnalysis* out) {
    BAGALG_ASSIGN_OR_RETURN(Type type, CheckNode(expr, out));
    // Record this node's contribution to the analysis.
    return type;
  }

 private:
  /// Requires a bag type (Bottom treated as empty bag of unknown element).
  static Result<Type> ElementOf(const Type& t, const char* op) {
    if (t.IsBag()) return t.element();
    if (t.IsBottom()) return Type::Bottom();
    return Status::TypeError(std::string(op) + " requires a bag operand, got " +
                             t.ToString());
  }

  Result<Type> CheckNode(const Expr& expr, ExprAnalysis* out) {
    const ExprNode& n = expr.node();
    out->node_count += 1;
    out->op_counts[n.kind] += 1;
    if (n.kind == ExprKind::kPowerbag) out->uses_powerbag = true;
    if (n.kind == ExprKind::kIfp || n.kind == ExprKind::kBoundedIfp) {
      out->uses_fixpoint = true;
    }

    // Power nesting: depth of P/P_b below (and including) this node. We
    // compute it via the recursion below: children are checked first and
    // their max depth is in power_depth_; see the bookkeeping at the end.
    int child_power_max = 0;

    auto check_child = [&](const Expr& child,
                           int binders_pushed) -> Result<Type> {
      (void)binders_pushed;  // stack already adjusted by caller
      int saved = power_depth_;
      power_depth_ = 0;
      auto r = CheckNode(child, out);
      child_power_max = std::max(child_power_max, power_depth_);
      power_depth_ = saved;
      return r;
    };

    Result<Type> result = [&]() -> Result<Type> {
      switch (n.kind) {
        case ExprKind::kInput: {
          auto it = schema_.find(n.name);
          if (it == schema_.end()) {
            return Status::NotFound("no input bag named '" + n.name + "'");
          }
          if (!it->second.IsBag()) {
            return Status::TypeError("input " + n.name +
                                     " has non-bag schema type " +
                                     it->second.ToString());
          }
          return it->second;
        }
        case ExprKind::kConst:
          return n.literal->type();
        case ExprKind::kVar: {
          if (n.index >= binders_.size()) {
            return Status::TypeError("unbound variable of depth " +
                                     std::to_string(n.index));
          }
          return binders_[binders_.size() - 1 - n.index];
        }
        case ExprKind::kAdditiveUnion:
        case ExprKind::kSubtract:
        case ExprKind::kMaxUnion:
        case ExprKind::kIntersect: {
          BAGALG_ASSIGN_OR_RETURN(Type a, check_child(n.children[0], 0));
          BAGALG_ASSIGN_OR_RETURN(Type b, check_child(n.children[1], 0));
          BAGALG_ASSIGN_OR_RETURN(Type ea,
                                  ElementOf(a, ExprKindName(n.kind)));
          BAGALG_ASSIGN_OR_RETURN(Type eb,
                                  ElementOf(b, ExprKindName(n.kind)));
          BAGALG_ASSIGN_OR_RETURN(Type elem, Type::Join(ea, eb));
          return Type::Bag(std::move(elem));
        }
        case ExprKind::kProduct: {
          BAGALG_ASSIGN_OR_RETURN(Type a, check_child(n.children[0], 0));
          BAGALG_ASSIGN_OR_RETURN(Type b, check_child(n.children[1], 0));
          BAGALG_ASSIGN_OR_RETURN(Type ea, ElementOf(a, "prod"));
          BAGALG_ASSIGN_OR_RETURN(Type eb, ElementOf(b, "prod"));
          if (ea.IsBottom() || eb.IsBottom()) return Type::Bag(Type::Bottom());
          if (!ea.IsTuple() || !eb.IsTuple()) {
            return Status::TypeError(
                "prod requires bags of tuples, got elements " +
                ea.ToString() + " and " + eb.ToString());
          }
          std::vector<Type> fields = ea.fields();
          fields.insert(fields.end(), eb.fields().begin(), eb.fields().end());
          return Type::Bag(Type::Tuple(std::move(fields)));
        }
        case ExprKind::kTupling: {
          std::vector<Type> fields;
          fields.reserve(n.children.size());
          for (const Expr& c : n.children) {
            BAGALG_ASSIGN_OR_RETURN(Type f, check_child(c, 0));
            fields.push_back(std::move(f));
          }
          return Type::Tuple(std::move(fields));
        }
        case ExprKind::kBagging: {
          BAGALG_ASSIGN_OR_RETURN(Type t, check_child(n.children[0], 0));
          return Type::Bag(std::move(t));
        }
        case ExprKind::kPowerset:
        case ExprKind::kPowerbag: {
          BAGALG_ASSIGN_OR_RETURN(Type t, check_child(n.children[0], 0));
          BAGALG_ASSIGN_OR_RETURN(Type elem,
                                  ElementOf(t, ExprKindName(n.kind)));
          return Type::Bag(Type::Bag(std::move(elem)));
        }
        case ExprKind::kBagDestroy: {
          BAGALG_ASSIGN_OR_RETURN(Type t, check_child(n.children[0], 0));
          BAGALG_ASSIGN_OR_RETURN(Type elem, ElementOf(t, "flat"));
          if (elem.IsBottom()) return Type::Bag(Type::Bottom());
          if (!elem.IsBag()) {
            return Status::TypeError("flat requires a bag of bags, got " +
                                     t.ToString());
          }
          return elem;
        }
        case ExprKind::kDupElim: {
          BAGALG_ASSIGN_OR_RETURN(Type t, check_child(n.children[0], 0));
          BAGALG_ASSIGN_OR_RETURN(Type elem, ElementOf(t, "dedup"));
          return Type::Bag(std::move(elem));
        }
        case ExprKind::kAttrProj: {
          BAGALG_ASSIGN_OR_RETURN(Type t, check_child(n.children[0], 0));
          if (t.IsBottom()) return Type::Bottom();
          if (!t.IsTuple()) {
            return Status::TypeError("proj applies to tuples, got " +
                                     t.ToString());
          }
          if (n.index < 1 || n.index > t.fields().size()) {
            return Status::TypeError(
                "proj attribute " + std::to_string(n.index) +
                " out of range for " + t.ToString());
          }
          return t.fields()[n.index - 1];
        }
        case ExprKind::kMap: {
          BAGALG_ASSIGN_OR_RETURN(Type src, check_child(n.children[1], 0));
          BAGALG_ASSIGN_OR_RETURN(Type elem, ElementOf(src, "map"));
          binders_.push_back(elem);
          auto body = check_child(n.children[0], 1);
          binders_.pop_back();
          BAGALG_RETURN_IF_ERROR(body.status());
          return Type::Bag(std::move(body).value());
        }
        case ExprKind::kSelect: {
          BAGALG_ASSIGN_OR_RETURN(Type src, check_child(n.children[2], 0));
          BAGALG_ASSIGN_OR_RETURN(Type elem, ElementOf(src, "sel"));
          binders_.push_back(elem);
          auto lhs = check_child(n.children[0], 1);
          auto rhs = check_child(n.children[1], 1);
          binders_.pop_back();
          BAGALG_RETURN_IF_ERROR(lhs.status());
          BAGALG_RETURN_IF_ERROR(rhs.status());
          // The two sides must denote comparable objects.
          BAGALG_RETURN_IF_ERROR(
              Type::Join(lhs.value(), rhs.value()).status());
          return Type::Bag(std::move(elem));
        }
        case ExprKind::kNest: {
          BAGALG_ASSIGN_OR_RETURN(Type src, check_child(n.children[0], 0));
          BAGALG_ASSIGN_OR_RETURN(Type elem, ElementOf(src, "nest"));
          if (elem.IsBottom()) return Type::Bag(Type::Bottom());
          if (!elem.IsTuple()) {
            return Status::TypeError("nest requires a bag of tuples");
          }
          std::vector<bool> nested(elem.fields().size(), false);
          for (size_t a : n.attrs) {
            if (a < 1 || a > elem.fields().size()) {
              return Status::TypeError("nest attribute out of range");
            }
            nested[a - 1] = true;
          }
          std::vector<Type> key;
          std::vector<Type> group;
          for (size_t i = 0; i < elem.fields().size(); ++i) {
            (nested[i] ? group : key).push_back(elem.fields()[i]);
          }
          key.push_back(Type::Bag(Type::Tuple(std::move(group))));
          return Type::Bag(Type::Tuple(std::move(key)));
        }
        case ExprKind::kUnnest: {
          BAGALG_ASSIGN_OR_RETURN(Type src, check_child(n.children[0], 0));
          BAGALG_ASSIGN_OR_RETURN(Type elem, ElementOf(src, "unnest"));
          if (elem.IsBottom()) return Type::Bag(Type::Bottom());
          if (!elem.IsTuple()) {
            return Status::TypeError("unnest requires a bag of tuples");
          }
          size_t a = n.attrs.empty() ? 0 : n.attrs[0];
          if (a < 1 || a > elem.fields().size()) {
            return Status::TypeError("unnest attribute out of range");
          }
          const Type& field = elem.fields()[a - 1];
          if (!field.IsBag() && !field.IsBottom()) {
            return Status::TypeError("unnest attribute is not a bag");
          }
          std::vector<Type> fields = elem.fields();
          fields[a - 1] = field.IsBag() ? field.element() : Type::Bottom();
          return Type::Bag(Type::Tuple(std::move(fields)));
        }
        case ExprKind::kIfp:
        case ExprKind::kBoundedIfp: {
          BAGALG_ASSIGN_OR_RETURN(Type seed, check_child(n.children[1], 0));
          BAGALG_ASSIGN_OR_RETURN(Type seed_elem, ElementOf(seed, "ifp"));
          binders_.push_back(Type::Bag(seed_elem));
          auto body = check_child(n.children[0], 1);
          binders_.pop_back();
          BAGALG_RETURN_IF_ERROR(body.status());
          BAGALG_ASSIGN_OR_RETURN(Type body_elem,
                                  ElementOf(body.value(), "ifp body"));
          BAGALG_ASSIGN_OR_RETURN(Type elem,
                                  Type::Join(seed_elem, body_elem));
          if (n.kind == ExprKind::kBoundedIfp) {
            BAGALG_ASSIGN_OR_RETURN(Type bound, check_child(n.children[2], 0));
            BAGALG_ASSIGN_OR_RETURN(Type bound_elem,
                                    ElementOf(bound, "bifp bound"));
            BAGALG_ASSIGN_OR_RETURN(elem, Type::Join(elem, bound_elem));
          }
          return Type::Bag(std::move(elem));
        }
      }
      return Status::Internal("unhandled expression kind");
    }();

    BAGALG_RETURN_IF_ERROR(result.status());
    if (node_types_ != nullptr) {
      (*node_types_)[expr.raw()] = result.value();
    }
    // Fragment bookkeeping: this node's type contributes to the max type
    // nesting; P/P_b extends the power-nesting depth of its subtree.
    out->max_type_nesting =
        std::max(out->max_type_nesting, result.value().BagNesting());
    power_depth_ = child_power_max;
    if (n.kind == ExprKind::kPowerset || n.kind == ExprKind::kPowerbag) {
      power_depth_ += 1;
    }
    out->power_nesting = std::max(out->power_nesting, power_depth_);
    return result;
  }

  const Schema& schema_;
  std::map<const ExprNode*, Type>* node_types_;
  std::vector<Type> binders_;
  /// Max P/P_b depth of the most recently checked subtree.
  int power_depth_ = 0;
};

}  // namespace

Result<Type> TypeOf(const Expr& expr, const Schema& schema) {
  ExprAnalysis analysis;
  Checker checker(schema, nullptr);
  return checker.Check(expr, &analysis);
}

Result<ExprAnalysis> AnalyzeExpr(const Expr& expr, const Schema& schema,
                                 std::map<const ExprNode*, Type>* node_types) {
  ExprAnalysis analysis;
  Checker checker(schema, node_types);
  BAGALG_ASSIGN_OR_RETURN(analysis.type, checker.Check(expr, &analysis));
  // Inputs contribute their nesting even when deeper than any intermediate.
  for (const auto& [name, type] : schema) {
    (void)name;
    analysis.max_type_nesting =
        std::max(analysis.max_type_nesting, type.BagNesting());
  }
  return analysis;
}

Status CheckFragment(const Expr& expr, const Schema& schema, int k) {
  BAGALG_ASSIGN_OR_RETURN(ExprAnalysis a, AnalyzeExpr(expr, schema));
  if (a.max_type_nesting > k) {
    return Status::Unsupported(
        "expression uses types of bag nesting " +
        std::to_string(a.max_type_nesting) + ", outside BALG^" +
        std::to_string(k));
  }
  return Status::Ok();
}

Status CheckBalg1(const Expr& expr, const Schema& schema) {
  BAGALG_ASSIGN_OR_RETURN(ExprAnalysis a, AnalyzeExpr(expr, schema));
  if (a.max_type_nesting > 1) {
    return Status::Unsupported("expression types exceed bag nesting 1");
  }
  for (ExprKind k : {ExprKind::kPowerset, ExprKind::kPowerbag,
                     ExprKind::kBagDestroy}) {
    auto it = a.op_counts.find(k);
    if (it != a.op_counts.end() && it->second > 0) {
      return Status::Unsupported(std::string("operator ") + ExprKindName(k) +
                                 " is not part of BALG^1");
    }
  }
  return Status::Ok();
}

}  // namespace bagalg
