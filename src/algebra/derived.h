#ifndef BAGALG_ALGEBRA_DERIVED_H_
#define BAGALG_ALGEBRA_DERIVED_H_

/// \file derived.h
/// The paper's derived operations and example queries as expression
/// combinators.
///
/// Everything here is *defined inside the algebra* — each function returns a
/// BALG expression built from the primitive operators, reproducing the
/// constructions of §3 (aggregates, operator interdefinability), §4
/// (cardinality comparisons, counting quantifiers, parity with order) and §6
/// (transitive closure with fixpoints). Property tests check each derived
/// form against its direct semantic counterpart.
///
/// Integer convention: the integer n is the bag containing n occurrences of
/// the unary tuple [unit] for a designated atom `unit` (the paper's bag of
/// n occurrences of a). Combinators taking `unit` follow this convention.
///
/// Unless noted otherwise, expression arguments may contain free lambda
/// variables; combinators shift indices as needed when wrapping arguments
/// under binders.

#include <utility>

#include "src/algebra/builder.h"
#include "src/algebra/expr.h"
#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg {

/// Adds `delta` to every variable of depth >= `cutoff` (free variables when
/// cutoff is the number of enclosing binders). Used when splicing an
/// expression under additional binders.
Expr ShiftVars(const Expr& expr, size_t cutoff, size_t delta);

// ---------------------------------------------------------------- integers

/// The value-level bag encoding of integer n: n copies of [unit].
Bag IntAsBag(uint64_t n, const Value& unit);

/// The same as a constant expression.
Expr IntConst(uint64_t n, const Value& unit);

/// N(e) of the paper's proofs: the bag of |e| occurrences of the tuple
/// [unit], i.e. the cardinality of e re-encoded as an integer bag. Defined
/// as MAP λx.[unit] (e) (equivalent to the paper's π1({{[unit]}} × e) and
/// applicable to any element type).
Expr CardAsInt(Expr e, const Value& unit);

// --------------------------------------------------------------- aggregates

/// count(B) (§3): the integer bag of B's total cardinality.
Expr CountAgg(Expr b, const Value& unit);

/// sum(B) for a bag of integer bags: δ(B).
Expr SumAgg(Expr b);

/// average(B) for a bag of integer bags (the paper's waverage, §3): selects
/// from P(sum(B)) the subbags x with |x| · count(B) = |sum(B)|, normalizes
/// them to integer bags, deduplicates and unwraps. Empty when the average is
/// not a whole number (exact-division semantics).
Expr AverageAgg(Expr b, const Value& unit);

// ---------------------------------------------------- boolean-style queries

/// A query that evaluates to {{[unit]}} iff lhs == rhs (both closed w.r.t.
/// the introduced binder), and to the empty bag otherwise.
Expr BoolTest(Expr lhs, Expr rhs, const Value& unit);

/// σ-predicate pair testing membership: elem ∈ bag (at least one
/// occurrence). Usable as (lhs, rhs) of Select.
std::pair<Expr, Expr> MemberTestPair(Expr elem, Expr bag);

/// σ-predicate pair testing sub ⊑ super (subbag containment).
std::pair<Expr, Expr> SubbagTestPair(Expr sub, Expr super);

// ------------------------------------------------- §4 counting comparisons

/// Example 4.2: π1(R×R) − π1(R×S); nonempty iff |R| > |S| (R, S bags of
/// unary tuples). This is the Rescher quantifier.
Expr CardGreater(Expr r, Expr s);

/// Härtig quantifier: {{[unit]}} iff |R| = |S|.
Expr CardEqual(Expr r, Expr s, const Value& unit);

/// Counting quantifier ∃≥i: nonempty iff R has at least `i` distinct
/// elements.
Expr AtLeastDistinct(Expr r, uint64_t i, const Value& unit);

/// Counting quantifier on occurrences: nonempty iff R's total cardinality
/// (duplicates included) is at least `i` — the paper's ∃≥i under bag
/// semantics.
Expr AtLeastTotal(Expr r, uint64_t i, const Value& unit);

/// Example 4.1: π2(σ_{2=node}(G)) − π1(σ_{1=node}(G)) over a binary edge
/// bag G; nonempty iff in-degree(node) > out-degree(node).
Expr InDegreeGreaterThanOut(Expr g, const Value& node);

/// §4 parity: nonempty iff |R| is even and positive, given a reflexive
/// total order Leq ⊆ [U,U] on the domain (as a database bag of pairs
/// [u, v] with u ≤ v). R is a set-like bag of unary tuples.
Expr EvenCardinalityWithOrder(Expr r, Expr leq, const Value& unit);

// -------------------------------------- §3 operator interdefinability

/// ⊎ from ∪/×/π (§3): π_{1..arity}((B1 × {{[tag_a]}}) ∪ (B2 × {{[tag_b]}})).
/// Requires tag_a != tag_b and both operands bags of `arity`-tuples.
Expr UplusViaMaxUnion(Expr b1, Expr b2, size_t arity, const Value& tag_a,
                      const Value& tag_b);

/// − from P (§3): δ(σ_{λx. x ⊎ (B1 ∩ B2) = B1}(P(B1))). Note the bag
/// nesting of the intermediate type exceeds the input's — the paper proves
/// (Prop 4.1) this increase is unavoidable.
Expr MonusViaPowerset(Expr b1, Expr b2);

/// ε from P, flat variant (Prop 3.1): δ(P(B) ∩ MAP β (B)). Works for any
/// element type; increases nesting by one.
Expr EpsViaPowerset(Expr b);

/// ε from P, nested variant (Prop 3.1): P(δ(B)) ∩ B for bags of bags; does
/// not increase the nesting.
Expr EpsViaPowersetNested(Expr b);

// ---------------------------------------------------------- §6 fixpoints

/// Transitive closure of a binary edge bag via the inflationary fixpoint
/// (§6): ifp(X → X ∪ π_{1,4}(σ_{2=3}(X × G)), G). Output is set-like.
Expr TransitiveClosure(Expr g);

/// The same via the *bounded* fixpoint [Suc93], bounding iterates by the
/// deduplicated pairs of mentioned nodes — the form that keeps BALG¹
/// tractable (§6 end).
Expr TransitiveClosureBounded(Expr g);

// ----------------------------------------------------------- decoding aids

/// Interprets a bag as an integer (its total cardinality); error if the
/// cardinality exceeds uint64.
Result<uint64_t> DecodeIntBag(const Bag& bag);

}  // namespace bagalg

#endif  // BAGALG_ALGEBRA_DERIVED_H_
