#ifndef BAGALG_ALGEBRA_EVAL_H_
#define BAGALG_ALGEBRA_EVAL_H_

/// \file eval.h
/// The BALG evaluator.
///
/// A tree-walking interpreter over canonical bags, dispatching every
/// operator to src/core/bag_ops.h and enforcing a Limits budget. The
/// evaluator is *instrumented*: it records operator applications, the
/// largest intermediate bag (distinct elements, multiplicity bit-length, and
/// optionally the paper's standard-encoding size), and fixpoint iteration
/// counts. The complexity experiments (Theorem 4.4's LOGSPACE proxy,
/// Theorem 5.1's PSPACE proxy, Proposition 3.2's explosion measurements)
/// read these statistics rather than wall-clock alone.

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/core/bag_ops.h"
#include "src/core/limits.h"
#include "src/obs/trace.h"
#include "src/util/bignat.h"
#include "src/util/governor.h"
#include "src/util/result.h"

namespace bagalg {

/// Counters collected during one (or more) evaluations.
struct EvalStats {
  /// Total operator applications (AST node visits, fixpoint bodies counted
  /// once per iteration).
  uint64_t steps = 0;
  /// Applications per operator kind.
  std::array<uint64_t, 32> op_counts{};
  static_assert(kExprKindCount <= std::tuple_size_v<decltype(op_counts)>,
                "op_counts is too small for the ExprKind enumerators; "
                "grow the array");
  /// Largest number of distinct elements in any intermediate bag.
  uint64_t max_distinct = 0;
  /// Largest multiplicity bit-length seen in any intermediate bag.
  uint64_t max_mult_bits = 0;
  /// Largest standard-encoding size of an intermediate bag (only tracked
  /// when Evaluator::set_track_sizes(true); expensive).
  BigNat max_standard_size;
  /// Largest counted-representation size of an intermediate bag (same gate).
  uint64_t max_counted_size = 0;
  /// Total fixpoint iterations across all IFP nodes.
  uint64_t fixpoint_iterations = 0;

  uint64_t CountOf(ExprKind kind) const {
    size_t i = static_cast<size_t>(kind);
    return i < op_counts.size() ? op_counts[i] : 0;
  }

  /// Restores the all-zero state.
  void Reset() { *this = EvalStats{}; }

  /// Accumulates another run's counters into this one: totals add, maxima
  /// take the larger value. Used to aggregate across REPL statements and to
  /// combine per-shard evaluator stats.
  void Merge(const EvalStats& other);

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

/// Per-AST-node runtime profile collected by Evaluator when node profiling
/// is on — the data behind `explain analyze`.
struct NodeProfile {
  /// Times the node was applied (fixpoint bodies once per iteration).
  uint64_t calls = 0;
  /// Cumulative wall time, children included.
  uint64_t wall_ns = 0;
  /// Largest distinct-element count over the node's bag results.
  uint64_t max_distinct = 0;
  /// Largest total cardinality (clamped to uint64) over bag results.
  uint64_t max_total = 0;
};

/// Keyed by node identity (ExprNode pointer), like the typecheck caches.
using NodeProfileMap = std::unordered_map<const ExprNode*, NodeProfile>;

/// Evaluates expressions against a database under a resource budget.
class Evaluator {
 public:
  explicit Evaluator(Limits limits = Limits::Default())
      : limits_(limits) {}

  /// Enables tracking of intermediate standard-encoding sizes (quadratic
  /// overhead in the worst case; off by default).
  void set_track_sizes(bool on) { track_sizes_ = on; }

  /// Attaches a tracer: every AST-node application becomes a span (fixpoint
  /// iterations as child spans) carrying distinct-count / multiplicity-bits
  /// attributes. Pass nullptr (the default) for zero-overhead evaluation —
  /// the hot path then pays a single pointer test per node.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Enables per-node profiling (calls, cumulative wall time, max result
  /// bag sizes, keyed by ExprNode identity) — the data consumed by
  /// ExplainAnalyzeExpr. Off by default.
  void set_node_profiling(bool on) { node_profiling_ = on; }
  bool node_profiling() const { return node_profiling_; }
  const NodeProfileMap& node_profiles() const { return node_profiles_; }

  /// An admission hook run before any evaluation work. A non-OK return
  /// (typically kBudgetExceeded from analysis::MakeBudgetPreflight) refuses
  /// the query; nothing is computed. Pass an empty function to clear.
  using Preflight = std::function<Status(const Expr&, const Database&)>;
  void set_preflight(Preflight preflight) {
    preflight_ = std::move(preflight);
  }
  const Preflight& preflight() const { return preflight_; }

  /// Attaches a per-query ResourceGovernor (deadline / memory cap /
  /// cancellation; see util/governor.h). Eval installs it as the ambient
  /// governor for the evaluation's duration, so every kernel checkpoint
  /// below — including on pool workers — enforces it. The pointer is
  /// borrowed; the caller keeps it alive across Eval and clears it with
  /// nullptr (the default: ungoverned, zero overhead).
  void set_governor(ResourceGovernor* governor) { governor_ = governor; }
  ResourceGovernor* governor() const { return governor_; }

  /// Evaluates `expr` (which may denote any object) against `db`.
  Result<Value> Eval(const Expr& expr, const Database& db);

  /// Evaluates and requires a bag-denoting result (the common query case).
  Result<Bag> EvalToBag(const Expr& expr, const Database& db);

  /// Statistics accumulated since construction / last ResetStats.
  const EvalStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.Reset();
    node_profiles_.clear();
  }

  const Limits& limits() const { return limits_; }

 private:
  friend class EvalFrame;
  Limits limits_;
  bool track_sizes_ = false;
  bool node_profiling_ = false;
  obs::Tracer* tracer_ = nullptr;
  ResourceGovernor* governor_ = nullptr;
  Preflight preflight_;
  EvalStats stats_;
  NodeProfileMap node_profiles_;
};

}  // namespace bagalg

#endif  // BAGALG_ALGEBRA_EVAL_H_
