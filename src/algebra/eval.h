#ifndef BAGALG_ALGEBRA_EVAL_H_
#define BAGALG_ALGEBRA_EVAL_H_

/// \file eval.h
/// The BALG evaluator.
///
/// A tree-walking interpreter over canonical bags, dispatching every
/// operator to src/core/bag_ops.h and enforcing a Limits budget. The
/// evaluator is *instrumented*: it records operator applications, the
/// largest intermediate bag (distinct elements, multiplicity bit-length, and
/// optionally the paper's standard-encoding size), and fixpoint iteration
/// counts. The complexity experiments (Theorem 4.4's LOGSPACE proxy,
/// Theorem 5.1's PSPACE proxy, Proposition 3.2's explosion measurements)
/// read these statistics rather than wall-clock alone.

#include <array>
#include <cstdint>
#include <string>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/core/bag_ops.h"
#include "src/core/limits.h"
#include "src/util/bignat.h"
#include "src/util/result.h"

namespace bagalg {

/// Counters collected during one (or more) evaluations.
struct EvalStats {
  /// Total operator applications (AST node visits, fixpoint bodies counted
  /// once per iteration).
  uint64_t steps = 0;
  /// Applications per operator kind.
  std::array<uint64_t, 32> op_counts{};
  /// Largest number of distinct elements in any intermediate bag.
  uint64_t max_distinct = 0;
  /// Largest multiplicity bit-length seen in any intermediate bag.
  uint64_t max_mult_bits = 0;
  /// Largest standard-encoding size of an intermediate bag (only tracked
  /// when Evaluator::set_track_sizes(true); expensive).
  BigNat max_standard_size;
  /// Largest counted-representation size of an intermediate bag (same gate).
  uint64_t max_counted_size = 0;
  /// Total fixpoint iterations across all IFP nodes.
  uint64_t fixpoint_iterations = 0;

  uint64_t CountOf(ExprKind kind) const {
    return op_counts[static_cast<size_t>(kind)];
  }

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

/// Evaluates expressions against a database under a resource budget.
class Evaluator {
 public:
  explicit Evaluator(Limits limits = Limits::Default())
      : limits_(limits) {}

  /// Enables tracking of intermediate standard-encoding sizes (quadratic
  /// overhead in the worst case; off by default).
  void set_track_sizes(bool on) { track_sizes_ = on; }

  /// Evaluates `expr` (which may denote any object) against `db`.
  Result<Value> Eval(const Expr& expr, const Database& db);

  /// Evaluates and requires a bag-denoting result (the common query case).
  Result<Bag> EvalToBag(const Expr& expr, const Database& db);

  /// Statistics accumulated since construction / last ResetStats.
  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats{}; }

  const Limits& limits() const { return limits_; }

 private:
  friend class EvalFrame;
  Limits limits_;
  bool track_sizes_ = false;
  EvalStats stats_;
};

}  // namespace bagalg

#endif  // BAGALG_ALGEBRA_EVAL_H_
