#include "src/obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "src/obs/flight.h"
#include "src/obs/json.h"
#include "src/util/parallel.h"

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace bagalg::obs {

namespace {

/// The ambient context new spans inherit. Shared across tracers: a thread
/// realistically reports into one tracer at a time, and the parent link is
/// an attribution aid, not ownership.
thread_local TraceContext tls_context;

/// Process-wide span id allocator; 0 is reserved for "no parent".
std::atomic<uint64_t> g_next_span_id{1};

uint64_t CurrentTid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

// ---- thread-pool propagation (see BatchContextHooks in util/parallel.h).
// Capture the dispatcher's ambient context once per batch; each worker
// installs it around its share of the tasks, so chunk spans opened inside
// pool tasks parent to the kernel span that dispatched them.

void* CaptureBatchTraceContext() {
  if (tls_context.tracer == nullptr) return nullptr;
  return new TraceContext(tls_context);
}

void* EnterBatchTraceContext(void* captured) {
  auto* token = new TraceContext(tls_context);
  tls_context = *static_cast<const TraceContext*>(captured);
  return token;
}

void ExitBatchTraceContext(void* token) {
  auto* previous = static_cast<TraceContext*>(token);
  tls_context = *previous;
  delete previous;
}

void ReleaseBatchTraceContext(void* captured) {
  delete static_cast<TraceContext*>(captured);
}

[[maybe_unused]] const bool g_batch_hooks_registered = [] {
  BatchContextHooks hooks;
  hooks.capture = &CaptureBatchTraceContext;
  hooks.enter = &EnterBatchTraceContext;
  hooks.exit = &ExitBatchTraceContext;
  hooks.release = &ReleaseBatchTraceContext;
  SetBatchContextHooks(hooks);
  return true;
}();

}  // namespace

TraceContext CurrentTraceContext() { return tls_context; }

TraceContextScope::TraceContextScope(const TraceContext& context)
    : previous_(tls_context) {
  tls_context = context;
}

TraceContextScope::~TraceContextScope() { tls_context = previous_; }

Span StartAmbientSpan(std::string_view name, std::string_view category) {
  Tracer* tracer = tls_context.tracer;
  if (tracer == nullptr) tracer = GlobalTracerIfEnabled();
  if (tracer == nullptr) return Span();
  return tracer->StartSpan(name, category);
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t ThreadCpuNowNs() {
#if defined(__linux__)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

// ----------------------------------------------------------------- Span

Span::Span(Tracer* tracer, std::string_view name, std::string_view category)
    : tracer_(tracer) {
  event_.name.assign(name);
  event_.category.assign(category);
  event_.tid = CurrentTid();
  event_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event_.parent_id = tls_context.parent_span_id;
  event_.depth = tls_context.depth;
  previous_context_ = tls_context;
  tls_context = TraceContext{tracer, event_.id, event_.depth + 1};
  cpu_start_ns_ = ThreadCpuNowNs();
  wall_start_ns_ = MonotonicNowNs();
  event_.start_ns = wall_start_ns_;  // rebased to the tracer epoch in End()
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      event_(std::move(other.event_)),
      previous_context_(other.previous_context_),
      wall_start_ns_(other.wall_start_ns_),
      cpu_start_ns_(other.cpu_start_ns_) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this == &other) return *this;
  End();
  tracer_ = other.tracer_;
  event_ = std::move(other.event_);
  previous_context_ = other.previous_context_;
  wall_start_ns_ = other.wall_start_ns_;
  cpu_start_ns_ = other.cpu_start_ns_;
  other.tracer_ = nullptr;
  return *this;
}

void Span::AddAttr(std::string_view name, uint64_t value) {
  if (tracer_ == nullptr) return;
  event_.attrs.emplace_back(std::string(name), AttrValue(value));
}

void Span::AddAttr(std::string_view name, int64_t value) {
  if (tracer_ == nullptr) return;
  event_.attrs.emplace_back(std::string(name), AttrValue(value));
}

void Span::AddAttr(std::string_view name, double value) {
  if (tracer_ == nullptr) return;
  event_.attrs.emplace_back(std::string(name), AttrValue(value));
}

void Span::AddAttr(std::string_view name, std::string_view value) {
  if (tracer_ == nullptr) return;
  event_.attrs.emplace_back(std::string(name),
                            AttrValue(std::string(value)));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  // Restore the ambient context only if this span is still the innermost
  // one; out-of-order ends (an operator span closed while a sibling stays
  // open) leave the context with the span that is actually innermost.
  if (tls_context.parent_span_id == event_.id) {
    tls_context = previous_context_;
  }
  uint64_t wall_end = MonotonicNowNs();
  uint64_t cpu_end = ThreadCpuNowNs();
  event_.wall_ns = wall_end - wall_start_ns_;
  event_.cpu_ns = cpu_end >= cpu_start_ns_ ? cpu_end - cpu_start_ns_ : 0;
  event_.start_ns = wall_start_ns_ >= tracer->epoch_ns_
                        ? wall_start_ns_ - tracer->epoch_ns_
                        : 0;
  tracer->Record(std::move(event_));
}

// ---------------------------------------------------------------- Tracer

Tracer::Tracer(bool enabled)
    : enabled_(enabled), epoch_ns_(MonotonicNowNs()) {}

Span Tracer::StartSpan(std::string_view name, std::string_view category) {
  if (!enabled()) return Span();
  return Span(this, name, category);
}

void Tracer::Record(TraceEvent event) {
  if (FlightRecorder* flight = flight_.load(std::memory_order_acquire)) {
    flight->Record(event);
  }
  if (!buffering_.load(std::memory_order_relaxed)) return;
  const size_t cap = max_events_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= cap) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::SnapshotEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TraceEvent> Tracer::TakeEvents() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- exporters

namespace {

void WriteAttrValue(std::ostream& os, const AttrValue& value) {
  if (const auto* i = std::get_if<int64_t>(&value)) {
    os << *i;
  } else if (const auto* u = std::get_if<uint64_t>(&value)) {
    os << *u;
  } else if (const auto* d = std::get_if<double>(&value)) {
    WriteJsonNumber(os, *d);
  } else {
    os << JsonQuote(std::get<std::string>(value));
  }
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":" << JsonQuote(e.name) << ",\"cat\":"
       << JsonQuote(e.category.empty() ? "bagalg" : e.category)
       << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << (e.tid % 1000000)
       << ",\"ts\":";
    WriteJsonNumber(os, static_cast<double>(e.start_ns) / 1000.0);
    os << ",\"dur\":";
    WriteJsonNumber(os, static_cast<double>(e.wall_ns) / 1000.0);
    os << ",\"args\":{\"cpu_us\":";
    WriteJsonNumber(os, static_cast<double>(e.cpu_ns) / 1000.0);
    os << ",\"depth\":" << e.depth << ",\"id\":" << e.id
       << ",\"parent\":" << e.parent_id;
    for (const auto& [name, value] : e.attrs) {
      os << "," << JsonQuote(name) << ":";
      WriteAttrValue(os, value);
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Status WriteChromeTraceFile(const Tracer& tracer, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open trace file " + path);
  }
  WriteChromeTrace(tracer.SnapshotEvents(), file);
  file.flush();
  if (!file) {
    return Status::InvalidArgument("failed writing trace file " + path);
  }
  return Status::Ok();
}

// ---------------------------------------------------------- global tracer

Tracer& GlobalTracer() {
  static Tracer tracer(/*enabled=*/false);
  return tracer;
}

Tracer* GlobalTracerIfEnabled() {
  Tracer& t = GlobalTracer();
  return t.enabled() ? &t : nullptr;
}

namespace {

std::string& GlobalTracePath() {
  static std::string path;
  return path;
}

void AtExitFlush() { (void)FlushGlobalTrace(); }

}  // namespace

bool EnableGlobalTraceFromArgs(int* argc, char** argv) {
  constexpr char kFlag[] = "--bagalg_trace=";
  constexpr size_t kFlagLen = sizeof(kFlag) - 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kFlag, kFlagLen) != 0) continue;
    GlobalTracePath() = argv[i] + kFlagLen;
    for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
    --*argc;
    GlobalTracer().set_enabled(true);
    std::atexit(AtExitFlush);
    return true;
  }
  return false;
}

Status FlushGlobalTrace() {
  const std::string& path = GlobalTracePath();
  if (path.empty()) return Status::Ok();
  return WriteChromeTraceFile(GlobalTracer(), path);
}

}  // namespace bagalg::obs
