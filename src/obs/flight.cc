#include "src/obs/flight.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace bagalg::obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(std::make_unique<Slot[]>(capacity == 0 ? 1 : capacity)) {}

void FlightRecorder::Record(const TraceEvent& event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  std::lock_guard<std::mutex> lock(slot.mu);
  FlightRecord& r = slot.record;
  r.seq = seq + 1;
  r.id = event.id;
  r.parent_id = event.parent_id;
  r.depth = event.depth;
  r.tid = event.tid;
  r.start_ns = event.start_ns;
  r.wall_ns = event.wall_ns;
  r.name = event.name;
  r.category = event.category;
  r.error.clear();
  for (const auto& [name, value] : event.attrs) {
    if (name != "error") continue;
    if (const auto* s = std::get_if<std::string>(&value)) r.error = *s;
  }
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.record.seq != 0) out.push_back(slot.record);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::Clear() {
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.record = FlightRecord();
  }
}

std::string FormatFlightDump(const std::vector<FlightRecord>& records) {
  if (records.empty()) return "flight recorder: empty";
  std::ostringstream os;
  os << "flight recorder (" << records.size()
     << " retained spans, oldest first):\n";
  for (const FlightRecord& r : records) {
    os << "  #" << r.seq << " " << r.name;
    if (!r.category.empty()) os << " (" << r.category << ")";
    os << " id=" << r.id << " parent=" << r.parent_id
       << " depth=" << r.depth
       << " wall_us=" << static_cast<double>(r.wall_ns) / 1000.0;
    if (!r.error.empty()) os << " error=\"" << r.error << "\"";
    os << "\n";
  }
  // Ancestry of the aborting span: prefer the most recent errored span —
  // spans record as the abort unwinds, so the deepest errored span of the
  // statement is in the ring even after teardown.
  std::map<uint64_t, const FlightRecord*> by_id;
  for (const FlightRecord& r : records) by_id[r.id] = &r;
  const FlightRecord* aborting = nullptr;
  for (const FlightRecord& r : records) {
    if (!r.error.empty()) aborting = &r;  // records are oldest-first
  }
  if (aborting == nullptr) aborting = &records.back();
  std::vector<const FlightRecord*> chain;
  for (const FlightRecord* r = aborting; r != nullptr;) {
    chain.push_back(r);
    auto it = by_id.find(r->parent_id);
    // Guard against parent cycles from id reuse across ring wraps.
    r = it == by_id.end() || chain.size() > by_id.size() ? nullptr
                                                         : it->second;
  }
  os << "aborting span ancestry (root -> leaf):\n  ";
  for (size_t i = chain.size(); i-- > 0;) {
    os << chain[i]->name;
    if (i != 0) os << " -> ";
  }
  return os.str();
}

}  // namespace bagalg::obs
