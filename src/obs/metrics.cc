#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "src/obs/json.h"
#include "src/util/fault.h"
#include "src/util/governor.h"

namespace bagalg::obs {

void Histogram::Observe(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  size_t bucket = static_cast<size_t>(std::bit_width(value));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, h] : other.histograms) {
    HistogramSnapshot& mine = histograms[name];
    mine.count += h.count;
    mine.sum += h.sum;
    mine.max = std::max(mine.max, h.max);
    if (mine.buckets.size() < h.buckets.size()) {
      mine.buckets.resize(h.buckets.size(), 0);
    }
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      mine.buckets[i] += h.buckets[i];
    }
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ",") << JsonQuote(name) << ":" << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "" : ",") << JsonQuote(name) << ":" << value;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << JsonQuote(name) << ":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"max\":" << h.max << ",\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      os << (i ? "," : "") << h.buckets[i];
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << name << " = " << value << " (gauge)\n";
  }
  for (const auto& [name, h] : histograms) {
    os << name << ": count=" << h.count << " sum=" << h.sum
       << " max=" << h.max << " mean=" << h.Mean() << "\n";
  }
  std::string out = os.str();
  if (!out.empty()) out.pop_back();
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h.count();
    hs.sum = h.sum();
    hs.max = h.max();
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) != 0) last = i + 1;
    }
    hs.buckets.resize(last);
    for (size_t i = 0; i < last; ++i) hs.buckets[i] = h.bucket(i);
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

void MirrorGovernorStats() {
  // Gauges set to cumulative process-wide values: same convention as the
  // kernel pool mirrors in bag_ops.cc. Static pointers keep repeated
  // mirroring lock-free after the first lookup.
  static Gauge* const deadline =
      GlobalMetrics().GetGauge("governor.deadline.trips");
  static Gauge* const memcap = GlobalMetrics().GetGauge("governor.memcap.trips");
  static Gauge* const cancel = GlobalMetrics().GetGauge("governor.cancel.trips");
  static Gauge* const fault_trips =
      GlobalMetrics().GetGauge("governor.fault.trips");
  static Gauge* const checkpoints =
      GlobalMetrics().GetGauge("governor.checkpoints");
  static Gauge* const bytes =
      GlobalMetrics().GetGauge("governor.bytes_accounted");
  static Gauge* const fault_events =
      GlobalMetrics().GetGauge("governor.fault.events");
  const GovernorStats stats = ResourceGovernor::Stats();
  deadline->Set(static_cast<int64_t>(stats.deadline_trips));
  memcap->Set(static_cast<int64_t>(stats.memcap_trips));
  cancel->Set(static_cast<int64_t>(stats.cancel_trips));
  fault_trips->Set(static_cast<int64_t>(stats.fault_trips));
  checkpoints->Set(static_cast<int64_t>(stats.checkpoints));
  bytes->Set(static_cast<int64_t>(stats.bytes_accounted));
  fault_events->Set(static_cast<int64_t>(fault::EventCount()));
}

}  // namespace bagalg::obs
