#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "src/obs/json.h"
#include "src/util/fault.h"
#include "src/util/governor.h"

namespace bagalg::obs {

void Histogram::Observe(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  size_t bucket = static_cast<size_t>(std::bit_width(value));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

uint64_t HistogramBucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (!(q >= 0.0)) q = 0.0;  // also maps NaN to 0
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based: the smallest r >= q*count,
  // with r >= 1 so q=0 lands on the first observation.
  double target = q * static_cast<double>(count);
  if (target < 1.0) target = 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate across the bucket's value range; the top is capped at
      // the recorded max so estimates never exceed an observed value.
      double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      double hi =
          i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i)) - 1.0;
      if (hi > static_cast<double>(max)) hi = static_cast<double>(max);
      if (lo > hi) lo = hi;
      const double fraction = (target - static_cast<double>(cumulative)) /
                              static_cast<double>(in_bucket);
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, h] : other.histograms) {
    HistogramSnapshot& mine = histograms[name];
    mine.count += h.count;
    mine.sum += h.sum;
    mine.max = std::max(mine.max, h.max);
    if (mine.buckets.size() < h.buckets.size()) {
      mine.buckets.resize(h.buckets.size(), 0);
    }
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      mine.buckets[i] += h.buckets[i];
    }
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ",") << JsonQuote(name) << ":" << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "" : ",") << JsonQuote(name) << ":" << value;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << JsonQuote(name) << ":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"max\":" << h.max << ",\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      os << (i ? "," : "") << h.buckets[i];
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << name << " = " << value << " (gauge)\n";
  }
  for (const auto& [name, h] : histograms) {
    os << name << ": count=" << h.count << " sum=" << h.sum
       << " max=" << h.max << " mean=" << h.Mean()
       << " p50=" << h.Percentile(0.50) << " p95=" << h.Percentile(0.95)
       << " p99=" << h.Percentile(0.99) << "\n";
  }
  std::string out = os.str();
  if (!out.empty()) out.pop_back();
  return out;
}

namespace {

/// "repl.eval.wall_us" -> "bagalg_repl_eval_wall_us": the bagalg_ prefix
/// namespaces the exposition, and every character outside the Prometheus
/// metric-name alphabet becomes '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "bagalg_";
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    const std::string prom = PrometheusName(name) + "_total";
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      os << prom << "_bucket{le=\"" << HistogramBucketUpperBound(i)
         << "\"} " << cumulative << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << prom << "_sum " << h.sum << "\n"
       << prom << "_count " << h.count << "\n";
  }
  return os.str();
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return &it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h.count();
    hs.sum = h.sum();
    hs.max = h.max();
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) != 0) last = i + 1;
    }
    hs.buckets.resize(last);
    for (size_t i = 0; i < last; ++i) hs.buckets[i] = h.bucket(i);
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry registry;
  return registry;
}

void MirrorGovernorStats() {
  // Counters raised to the cumulative process-wide totals: the sources are
  // monotone, and RaiseTo keeps concurrent mirrors monotone too, so the
  // Prometheus exposition can type them as counters. Static pointers keep
  // repeated mirroring lock-free after the first lookup.
  static Counter* const deadline =
      GlobalMetrics().GetCounter("governor.deadline.trips");
  static Counter* const memcap =
      GlobalMetrics().GetCounter("governor.memcap.trips");
  static Counter* const cancel =
      GlobalMetrics().GetCounter("governor.cancel.trips");
  static Counter* const fault_trips =
      GlobalMetrics().GetCounter("governor.fault.trips");
  static Counter* const checkpoints =
      GlobalMetrics().GetCounter("governor.checkpoints");
  static Counter* const bytes =
      GlobalMetrics().GetCounter("governor.bytes_accounted");
  static Counter* const fault_events =
      GlobalMetrics().GetCounter("governor.fault.events");
  const GovernorStats stats = ResourceGovernor::Stats();
  deadline->RaiseTo(stats.deadline_trips);
  memcap->RaiseTo(stats.memcap_trips);
  cancel->RaiseTo(stats.cancel_trips);
  fault_trips->RaiseTo(stats.fault_trips);
  checkpoints->RaiseTo(stats.checkpoints);
  bytes->RaiseTo(stats.bytes_accounted);
  fault_events->RaiseTo(fault::EventCount());
}

}  // namespace bagalg::obs
