#include "src/obs/json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace bagalg::obs {

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  AppendJsonEscaped(&out, text);
  out += '"';
  return out;
}

void WriteJsonNumber(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << 0;
    return;
  }
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    os << static_cast<int64_t>(value);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  os << buf;
}

}  // namespace bagalg::obs
