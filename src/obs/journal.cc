#include "src/obs/journal.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/obs/json.h"

namespace bagalg::obs {

uint64_t HashStatementText(std::string_view text) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::string JournalEntry::ToJsonLine() const {
  std::ostringstream os;
  // The hash is emitted as a hex string: a raw uint64 can exceed 2^53 and
  // lose precision in JSON consumers that parse numbers as doubles.
  os << "{\"seq\":" << seq << ",\"kind\":" << JsonQuote(kind)
     << ",\"engine\":" << JsonQuote(engine)
     << ",\"statement_hash\":\"" << std::hex << std::setw(16)
     << std::setfill('0') << statement_hash << std::dec << "\""
     << ",\"statement\":" << JsonQuote(statement)
     << ",\"tractability\":" << JsonQuote(tractability)
     << ",\"cost_bound\":" << JsonQuote(cost_bound)
     << ",\"wall_ns\":" << wall_ns << ",\"cpu_ns\":" << cpu_ns
     << ",\"steps\":" << steps
     << ",\"result_distinct\":" << result_distinct
     << ",\"bytes_accounted\":" << bytes_accounted
     << ",\"outcome\":" << JsonQuote(outcome)
     << ",\"status\":" << JsonQuote(status_message) << "}";
  return os.str();
}

QueryJournal::QueryJournal(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  entries_.resize(capacity_);
}

uint64_t QueryJournal::Append(JournalEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.seq = next_seq_++;
  const uint64_t seq = entry.seq;
  entries_[seq % capacity_] = std::move(entry);
  return seq;
}

std::vector<JournalEntry> QueryJournal::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t newest = next_seq_ - 1;
  const uint64_t retained =
      newest < capacity_ ? newest : static_cast<uint64_t>(capacity_);
  uint64_t take = n < retained ? n : retained;
  std::vector<JournalEntry> out;
  out.reserve(take);
  for (uint64_t seq = newest - take + 1; seq <= newest; ++seq) {
    out.push_back(entries_[seq % capacity_]);
  }
  return out;
}

uint64_t QueryJournal::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

Status QueryJournal::ExportJsonl(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open journal file " + path);
  }
  if (!header_.empty()) file << header_ << "\n";
  for (const JournalEntry& e : Tail(capacity_)) {
    file << e.ToJsonLine() << "\n";
  }
  file.flush();
  if (!file) {
    return Status::InvalidArgument("failed writing journal file " + path);
  }
  return Status::Ok();
}

std::string QueryJournal::ToString(size_t n) const {
  std::vector<JournalEntry> tail = Tail(n);
  if (tail.empty()) return "(journal empty)";
  std::ostringstream os;
  for (size_t i = 0; i < tail.size(); ++i) {
    const JournalEntry& e = tail[i];
    if (i > 0) os << "\n";
    os << "#" << e.seq << " " << e.kind;
    if (!e.engine.empty()) os << "[" << e.engine << "]";
    os << " outcome=" << e.outcome
       << " wall_ms=" << static_cast<double>(e.wall_ns) / 1e6
       << " distinct=" << e.result_distinct
       << " bytes=" << e.bytes_accounted;
    if (!e.tractability.empty()) {
      os << " tract=" << e.tractability << " bound=\"" << e.cost_bound
         << "\"";
    }
    std::string stmt = e.statement;
    if (stmt.size() > 48) stmt = stmt.substr(0, 45) + "...";
    os << " :: " << stmt;
  }
  return os.str();
}

}  // namespace bagalg::obs
