#ifndef BAGALG_OBS_JOURNAL_H_
#define BAGALG_OBS_JOURNAL_H_

/// \file journal.h
/// The query journal: one append-only structured record per executed
/// statement — what ran, what the static cost analyzer predicted, what it
/// actually cost, and how the governor disposed of it. The REPL appends an
/// entry for every eval/count/exec statement (success *and* failure; see
/// ScriptRunner), keeps the most recent `capacity` entries in memory for
/// the `\journal [N]` command, and exports them as JSONL — one JSON object
/// per line, the schema documented in docs/OBSERVABILITY.md and checked in
/// CI against tools/schemas/journal.schema.json.
///
/// Layering: the journal stores *strings* for the analyzer's verdicts
/// (tractability class, cost bound), so obs stays independent of
/// src/analysis; the driver that owns both computes them.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace bagalg::obs {

/// One executed statement.
struct JournalEntry {
  /// 1-based session-wide order, stamped by Append.
  uint64_t seq = 0;
  /// Statement verb: "eval", "count", or "exec".
  std::string kind;
  /// Execution engine that produced the result: "eval" for the
  /// tree-walking evaluator, "volcano" / "ir" for exec statements (what
  /// exec::ExecReport said actually ran, not what was requested). Empty in
  /// entries predating engine selection.
  std::string engine;
  /// FNV-1a 64-bit hash of the statement text — a stable identity for
  /// aggregating repeated statements across sessions without shipping the
  /// (possibly large) text.
  uint64_t statement_hash = 0;
  /// The statement text itself (expression part only).
  std::string statement;
  /// Static analyzer verdicts, empty when analysis was unavailable
  /// (e.g. the expression no longer typechecks with symbolic inputs).
  std::string tractability;
  std::string cost_bound;
  uint64_t wall_ns = 0;
  /// Driver-thread CPU time (excludes pool workers).
  uint64_t cpu_ns = 0;
  /// Evaluator steps consumed (0 for exec statements).
  uint64_t steps = 0;
  /// Distinct elements in the result bag (0 on failure / non-bag results).
  uint64_t result_distinct = 0;
  /// Bytes accounted against the statement's governor.
  uint64_t bytes_accounted = 0;
  /// Governor disposition: "ok", "deadline", "memcap", "cancel",
  /// "budget-refused", "fault", or "error" (a non-governor failure).
  std::string outcome;
  /// The failing Status message; empty on success.
  std::string status_message;

  /// The entry as one JSONL line (no trailing newline).
  std::string ToJsonLine() const;
};

/// FNV-1a 64-bit — the journal's statement identity hash.
uint64_t HashStatementText(std::string_view text);

/// Bounded in-memory journal with JSONL export. Thread-safe; appends are
/// per-statement, so a mutex is plenty.
class QueryJournal {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit QueryJournal(size_t capacity = kDefaultCapacity);

  /// Stamps entry.seq, retains the entry (evicting the oldest beyond
  /// capacity), and returns the seq.
  uint64_t Append(JournalEntry entry);

  /// Installs a header emitted as the *first* line of every JSONL export —
  /// a complete JSON object string that must carry `"header":true` so
  /// consumers (tools/validate_obs.py) can tell it from entries. The
  /// drivers put the build identity here (BuildInfoJson plus the default
  /// execution engine), so an exported journal is self-describing: which
  /// binary produced it is in the file, not in tribal knowledge. Empty
  /// (the default) emits no header.
  void set_header_json(std::string header) { header_ = std::move(header); }
  const std::string& header_json() const { return header_; }

  /// The most recent min(n, retained) entries, oldest first.
  std::vector<JournalEntry> Tail(size_t n) const;

  /// Total entries ever appended (>= retained count).
  uint64_t total() const;
  size_t capacity() const { return capacity_; }

  /// Writes every retained entry as JSONL to `path` (truncates).
  Status ExportJsonl(const std::string& path) const;

  /// Human-readable rendering of the last `n` entries, newest last — the
  /// `\journal [N]` output.
  std::string ToString(size_t n) const;

 private:
  size_t capacity_;
  /// Set once at session start, before exports; not guarded.
  std::string header_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;   // guarded by mu_
  std::vector<JournalEntry> entries_;  // ring, indexed by seq % capacity_
};

}  // namespace bagalg::obs

#endif  // BAGALG_OBS_JOURNAL_H_
