#ifndef BAGALG_OBS_FLIGHT_H_
#define BAGALG_OBS_FLIGHT_H_

/// \file flight.h
/// A fixed-size ring buffer of recently finished spans — the engine's
/// black box. Attach one to a Tracer with set_flight_recorder and every
/// finished span is mirrored into the ring regardless of whether the
/// tracer buffers events, so the last K spans before a governor trip or
/// fault-injection abort survive the statement's teardown and can be
/// dumped alongside the error (see ScriptRunner and docs/ROBUSTNESS.md).
///
/// Writers claim a slot with a single atomic fetch-add; the per-slot copy
/// is guarded by that slot's own mutex, so concurrent writers only contend
/// when the ring wraps onto the same slot (or with a reader copying it).
/// There is deliberately no global lock: recording stays cheap and
/// TSan-clean under the parallel kernels.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace bagalg::obs {

/// A compact copy of one finished span, as retained by the ring.
struct FlightRecord {
  /// 1-based global record order (monotone across wraps).
  uint64_t seq = 0;
  uint64_t id = 0;
  uint64_t parent_id = 0;
  uint32_t depth = 0;
  uint64_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t wall_ns = 0;
  std::string name;
  std::string category;
  /// The span's "error" attribute, when it carried one (eval spans attach
  /// it on a failed node application).
  std::string error;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Mirrors one finished span into the ring (no-op when disabled).
  void Record(const TraceEvent& event);

  /// Copies the retained records, oldest first.
  std::vector<FlightRecord> Snapshot() const;

  /// Empties the ring (the seq counter keeps running).
  void Clear();

  /// Spans recorded since construction (>= capacity means the ring wrapped).
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    mutable std::mutex mu;
    FlightRecord record;  // seq == 0 means the slot is empty
  };

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> head_{0};
  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
};

/// Renders a snapshot as the human-readable dump printed on statement
/// abort: the retained spans oldest-first, then the ancestry chain
/// (root -> aborting span) of the most recent errored span — or, when no
/// span carried an error attribute, of the most recent span.
std::string FormatFlightDump(const std::vector<FlightRecord>& records);

}  // namespace bagalg::obs

#endif  // BAGALG_OBS_FLIGHT_H_
