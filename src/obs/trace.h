#ifndef BAGALG_OBS_TRACE_H_
#define BAGALG_OBS_TRACE_H_

/// \file trace.h
/// Low-overhead query tracing for the bagalg engine.
///
/// A Tracer collects TraceEvents; an RAII Span measures one region (wall
/// time, thread CPU time, nesting depth) and carries typed attributes such
/// as a result bag's distinct count or multiplicity bit-length. When a
/// tracer is disabled — or when instrumented code holds a null Tracer* —
/// the hot path pays exactly one branch and no allocation: StartSpan on a
/// disabled tracer returns an inactive Span whose every method is a no-op.
///
/// Finished traces export to the Chrome trace-event JSON format (load the
/// file in chrome://tracing or https://ui.perfetto.dev) via
/// WriteChromeTrace, so evaluator node applications, fixpoint iterations,
/// and exec operator lifecycles render as a nested flame graph.
///
/// Every span carries a process-unique id and the id of the innermost span
/// open when it started (its parent). The parent link comes from a
/// thread-local TraceContext that spans maintain automatically; the thread
/// pool propagates the dispatching caller's context onto its workers (via
/// the BatchContextHooks registered with util/parallel), so chunk spans
/// recorded on worker threads parent to the kernel span that dispatched
/// them instead of showing up as orphaned roots.
///
/// Thread safety: Tracer is internally synchronized (spans from multiple
/// threads interleave safely); a Span itself must stay on one thread.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/util/result.h"

namespace bagalg::obs {

/// Monotonic wall clock, nanoseconds from an arbitrary epoch.
uint64_t MonotonicNowNs();

/// Per-thread CPU clock, nanoseconds (0 where unsupported).
uint64_t ThreadCpuNowNs();

/// A typed span/event attribute value.
using AttrValue = std::variant<int64_t, uint64_t, double, std::string>;

/// One finished span.
struct TraceEvent {
  std::string name;
  std::string category;
  /// Process-unique span id (1-based; 0 never assigned).
  uint64_t id = 0;
  /// Id of the innermost span open when this one started; 0 = root.
  uint64_t parent_id = 0;
  /// Start, nanoseconds since the tracer's epoch.
  uint64_t start_ns = 0;
  /// Wall-clock duration.
  uint64_t wall_ns = 0;
  /// Thread CPU time consumed while the span was open.
  uint64_t cpu_ns = 0;
  /// Thread the span ran on.
  uint64_t tid = 0;
  /// Nesting depth at open time (0 = a root span).
  uint32_t depth = 0;
  std::vector<std::pair<std::string, AttrValue>> attrs;
};

class Tracer;

/// What a new span on this thread inherits: the tracer the enclosing span
/// reports to, the enclosing span's id, and the nesting depth. Default
/// (tracer == nullptr) means "no enclosing span".
struct TraceContext {
  Tracer* tracer = nullptr;
  uint64_t parent_span_id = 0;
  uint32_t depth = 0;
};

/// The ambient context of the calling thread.
TraceContext CurrentTraceContext();

/// RAII installer for the ambient context — what the thread pool uses (via
/// the BatchContextHooks registered in trace.cc) to re-parent worker-thread
/// spans under the dispatching caller's open span.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext previous_;
};

/// RAII handle for one open span. Inactive (default-constructed or from a
/// disabled tracer) spans ignore all calls. Records into the tracer on End()
/// or destruction, whichever comes first.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  bool active() const { return tracer_ != nullptr; }

  /// The span's process-unique id (0 when inactive).
  uint64_t id() const { return event_.id; }

  /// Attaches a typed attribute (kept in insertion order).
  void AddAttr(std::string_view name, uint64_t value);
  void AddAttr(std::string_view name, int64_t value);
  void AddAttr(std::string_view name, double value);
  void AddAttr(std::string_view name, std::string_view value);

  /// Ends the span now and records it; later calls are no-ops.
  void End();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string_view name, std::string_view category);

  Tracer* tracer_ = nullptr;
  TraceEvent event_;
  /// Ambient context to restore when this span ends (LIFO case); ends out
  /// of order leave the context to the still-open inner span.
  TraceContext previous_context_;
  uint64_t wall_start_ns_ = 0;
  uint64_t cpu_start_ns_ = 0;
};

/// Opens a span on the ambient context's tracer — the tracer of the
/// innermost open span on this thread (however it got here: lexical
/// nesting or pool propagation) — falling back to the global tracer.
/// Inactive when neither is enabled. This is how the kernels trace: they
/// land in whichever trace the query driver is collecting.
Span StartAmbientSpan(std::string_view name, std::string_view category = "");

class FlightRecorder;

/// Collects spans. Construction chooses the initial enabled state; a
/// disabled tracer hands out inactive spans.
class Tracer {
 public:
  explicit Tracer(bool enabled = true);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Opens a span (inactive if the tracer is disabled).
  Span StartSpan(std::string_view name, std::string_view category = "");

  /// Copies the finished events collected so far.
  std::vector<TraceEvent> SnapshotEvents() const;
  /// Moves the finished events out, leaving the tracer empty.
  std::vector<TraceEvent> TakeEvents();
  /// Number of finished events held.
  size_t event_count() const;
  /// Events discarded because the buffer cap was reached.
  uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Discards all buffered events and the dropped counter.
  void Clear();

  /// Caps the event buffer (default 1M events); further spans are counted
  /// in dropped_count() but not stored. Safe to call while spans record
  /// concurrently (the cap is atomic; Record reads it once per event).
  void set_max_events(size_t n) {
    max_events_.store(n, std::memory_order_relaxed);
  }
  size_t max_events() const {
    return max_events_.load(std::memory_order_relaxed);
  }

  /// Mirrors every finished span into `recorder` (nullptr detaches). The
  /// recorder must outlive the tracer or be detached first.
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_.store(recorder, std::memory_order_release);
  }
  FlightRecorder* flight_recorder() const {
    return flight_.load(std::memory_order_acquire);
  }

  /// With buffering off, finished spans still feed the flight recorder but
  /// are not accumulated in the event buffer — the always-on black-box
  /// mode: bounded memory, no per-statement Clear() needed.
  void set_buffering(bool on) {
    buffering_.store(on, std::memory_order_relaxed);
  }
  bool buffering() const {
    return buffering_.load(std::memory_order_relaxed);
  }

 private:
  friend class Span;
  void Record(TraceEvent event);

  std::atomic<bool> enabled_;
  std::atomic<bool> buffering_{true};
  const uint64_t epoch_ns_;
  std::atomic<FlightRecorder*> flight_{nullptr};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<size_t> max_events_{size_t{1} << 20};
  std::atomic<uint64_t> dropped_{0};
};

/// Writes events as a Chrome trace-event JSON document
/// ({"traceEvents":[...]}, "X" complete events, microsecond timestamps).
void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os);

/// Snapshot + export to a file. IO errors surface as InvalidArgument.
Status WriteChromeTraceFile(const Tracer& tracer, const std::string& path);

/// The process-wide tracer, constructed disabled. Instrumented code that is
/// not handed an explicit tracer may consult this one.
Tracer& GlobalTracer();

/// &GlobalTracer() when it is enabled, nullptr otherwise — the natural value
/// to pass to Evaluator::set_tracer and exec::ExecOptions.
Tracer* GlobalTracerIfEnabled();

/// Benchmark/CLI hook: scans argv for "--bagalg_trace=FILE". When present,
/// removes the flag from argv (so google-benchmark does not reject it),
/// enables the global tracer, and registers an atexit handler that writes
/// the Chrome trace to FILE. Returns true iff the flag was found.
bool EnableGlobalTraceFromArgs(int* argc, char** argv);

/// Writes the global tracer's events to the path configured by
/// EnableGlobalTraceFromArgs (no-op OK status if none was set).
Status FlushGlobalTrace();

}  // namespace bagalg::obs

#endif  // BAGALG_OBS_TRACE_H_
