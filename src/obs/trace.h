#ifndef BAGALG_OBS_TRACE_H_
#define BAGALG_OBS_TRACE_H_

/// \file trace.h
/// Low-overhead query tracing for the bagalg engine.
///
/// A Tracer collects TraceEvents; an RAII Span measures one region (wall
/// time, thread CPU time, nesting depth) and carries typed attributes such
/// as a result bag's distinct count or multiplicity bit-length. When a
/// tracer is disabled — or when instrumented code holds a null Tracer* —
/// the hot path pays exactly one branch and no allocation: StartSpan on a
/// disabled tracer returns an inactive Span whose every method is a no-op.
///
/// Finished traces export to the Chrome trace-event JSON format (load the
/// file in chrome://tracing or https://ui.perfetto.dev) via
/// WriteChromeTrace, so evaluator node applications, fixpoint iterations,
/// and exec operator lifecycles render as a nested flame graph.
///
/// Thread safety: Tracer is internally synchronized (spans from multiple
/// threads interleave safely); a Span itself must stay on one thread.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/util/result.h"

namespace bagalg::obs {

/// Monotonic wall clock, nanoseconds from an arbitrary epoch.
uint64_t MonotonicNowNs();

/// Per-thread CPU clock, nanoseconds (0 where unsupported).
uint64_t ThreadCpuNowNs();

/// A typed span/event attribute value.
using AttrValue = std::variant<int64_t, uint64_t, double, std::string>;

/// One finished span.
struct TraceEvent {
  std::string name;
  std::string category;
  /// Start, nanoseconds since the tracer's epoch.
  uint64_t start_ns = 0;
  /// Wall-clock duration.
  uint64_t wall_ns = 0;
  /// Thread CPU time consumed while the span was open.
  uint64_t cpu_ns = 0;
  /// Thread the span ran on.
  uint64_t tid = 0;
  /// Nesting depth at open time (0 = outermost open span on the thread).
  uint32_t depth = 0;
  std::vector<std::pair<std::string, AttrValue>> attrs;
};

class Tracer;

/// RAII handle for one open span. Inactive (default-constructed or from a
/// disabled tracer) spans ignore all calls. Records into the tracer on End()
/// or destruction, whichever comes first.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  bool active() const { return tracer_ != nullptr; }

  /// Attaches a typed attribute (kept in insertion order).
  void AddAttr(std::string_view name, uint64_t value);
  void AddAttr(std::string_view name, int64_t value);
  void AddAttr(std::string_view name, double value);
  void AddAttr(std::string_view name, std::string_view value);

  /// Ends the span now and records it; later calls are no-ops.
  void End();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string_view name, std::string_view category);

  Tracer* tracer_ = nullptr;
  TraceEvent event_;
  uint64_t wall_start_ns_ = 0;
  uint64_t cpu_start_ns_ = 0;
};

/// Collects spans. Construction chooses the initial enabled state; a
/// disabled tracer hands out inactive spans.
class Tracer {
 public:
  explicit Tracer(bool enabled = true);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Opens a span (inactive if the tracer is disabled).
  Span StartSpan(std::string_view name, std::string_view category = "");

  /// Copies the finished events collected so far.
  std::vector<TraceEvent> SnapshotEvents() const;
  /// Moves the finished events out, leaving the tracer empty.
  std::vector<TraceEvent> TakeEvents();
  /// Number of finished events held.
  size_t event_count() const;
  /// Events discarded because the buffer cap was reached.
  uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Discards all buffered events and the dropped counter.
  void Clear();

  /// Caps the event buffer (default 1M events); further spans are counted
  /// in dropped_count() but not stored.
  void set_max_events(size_t n) { max_events_ = n; }

 private:
  friend class Span;
  void Record(TraceEvent event);

  std::atomic<bool> enabled_;
  const uint64_t epoch_ns_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t max_events_ = 1u << 20;
  std::atomic<uint64_t> dropped_{0};
};

/// Writes events as a Chrome trace-event JSON document
/// ({"traceEvents":[...]}, "X" complete events, microsecond timestamps).
void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os);

/// Snapshot + export to a file. IO errors surface as InvalidArgument.
Status WriteChromeTraceFile(const Tracer& tracer, const std::string& path);

/// The process-wide tracer, constructed disabled. Instrumented code that is
/// not handed an explicit tracer may consult this one.
Tracer& GlobalTracer();

/// &GlobalTracer() when it is enabled, nullptr otherwise — the natural value
/// to pass to Evaluator::set_tracer and exec::ExecOptions.
Tracer* GlobalTracerIfEnabled();

/// Benchmark/CLI hook: scans argv for "--bagalg_trace=FILE". When present,
/// removes the flag from argv (so google-benchmark does not reject it),
/// enables the global tracer, and registers an atexit handler that writes
/// the Chrome trace to FILE. Returns true iff the flag was found.
bool EnableGlobalTraceFromArgs(int* argc, char** argv);

/// Writes the global tracer's events to the path configured by
/// EnableGlobalTraceFromArgs (no-op OK status if none was set).
Status FlushGlobalTrace();

}  // namespace bagalg::obs

#endif  // BAGALG_OBS_TRACE_H_
