#ifndef BAGALG_OBS_JSON_H_
#define BAGALG_OBS_JSON_H_

/// \file json.h
/// Minimal JSON emission helpers shared by the obs exporters (Chrome
/// trace-event files and flat metrics dumps). Emission only — the one
/// component that must *parse* JSON (the bagalgd request path) has its own
/// defensive reader in src/net/json_reader.h.

#include <ostream>
#include <string>
#include <string_view>

namespace bagalg::obs {

/// Appends `text` to `out` with JSON string escaping (quotes, backslash,
/// control characters); the surrounding quotes are NOT added.
void AppendJsonEscaped(std::string* out, std::string_view text);

/// Returns `text` as a quoted, escaped JSON string literal.
std::string JsonQuote(std::string_view text);

/// Writes a finite double the way JSON wants it (no inf/nan — those are
/// clamped to 0); integral values print without a trailing ".0".
void WriteJsonNumber(std::ostream& os, double value);

}  // namespace bagalg::obs

#endif  // BAGALG_OBS_JSON_H_
