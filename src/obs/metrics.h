#ifndef BAGALG_OBS_METRICS_H_
#define BAGALG_OBS_METRICS_H_

/// \file metrics.h
/// A process-wide registry of named counters, gauges, and histograms.
///
/// Instruments are created on first lookup and live for the registry's
/// lifetime, so callers cache the returned pointer and update it lock-free
/// (all instruments are built on std::atomic). Snapshot() captures a
/// point-in-time copy that can be merged with snapshots from other
/// registries/processes (shards), rendered as text, or exported as a flat
/// JSON document — the substrate behind the REPL's `\metrics` command and
/// the bench harness's perf trajectory files.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bagalg::obs {

/// Monotonically increasing count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the counter to `target` if it is currently below it (CAS max).
  /// This is how external cumulative totals (GovernorStats, ParallelStats)
  /// are mirrored as counters: concurrent mirrors with stale snapshots can
  /// never move the value backwards, preserving monotonicity.
  void RaiseTo(uint64_t target) {
    uint64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < target &&
           !value_.compare_exchange_weak(seen, target,
                                         std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable signed level (bytes in use, open cursors, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two histogram: bucket i counts observations whose bit-length is
/// i (value 0 lands in bucket 0, 1 in bucket 1, 2..3 in bucket 2, ...).
/// Coarse but merge-friendly and allocation-free.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(uint64_t value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  /// Trailing zero buckets trimmed.
  std::vector<uint64_t> buckets;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Estimates the q-quantile (q in [0,1], clamped) by locating the bucket
  /// containing the ceil(q*count)-th observation and interpolating linearly
  /// across that bucket's value range [2^(i-1), 2^i - 1] (bucket 0 is the
  /// single value 0). The top of the crossing bucket is capped at the
  /// recorded max, so Percentile(1.0) returns max exactly and a
  /// single-observation histogram returns that observation for every q.
  /// Returns 0 for an empty histogram.
  double Percentile(double q) const;
};

/// Inclusive upper bound of pow-2 histogram bucket i (the largest value
/// whose bit-width is i): 0 for bucket 0, 2^i - 1 otherwise. These are the
/// `le` labels of the Prometheus exposition.
uint64_t HistogramBucketUpperBound(size_t i);

/// Point-in-time copy of a whole registry. Mergeable: counters and
/// histograms add; gauges add too (the shard-aggregation reading).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& other);

  /// Flat JSON: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
  /// Human-readable flat dump, one instrument per line, sorted by name.
  std::string ToString() const;
  /// Prometheus text exposition format (version 0.0.4): every instrument
  /// emitted with a `# TYPE` line and a `bagalg_`-prefixed sanitized name;
  /// counters get the `_total` suffix, histograms expand into cumulative
  /// `_bucket{le="..."}` series (le-labels from the pow-2 bucket bounds,
  /// `+Inf` included) plus `_sum` and `_count`. The future `bagalgd`
  /// `/metrics` endpoint serves exactly this string.
  std::string ToPrometheusText() const;
};

/// Thread-safe instrument registry. Returned pointers remain valid for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered instrument (names stay registered).
  void Reset();

 private:
  mutable std::mutex mu_;
  // std::map never relocates mapped values, so handed-out pointers stay
  // valid as the maps grow.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// The process-wide registry used by the rewriter, exec engine, and REPL.
MetricsRegistry& GlobalMetrics();

/// Mirrors the cumulative ResourceGovernor and fault-injection totals into
/// GlobalMetrics() *counters* (`governor.deadline.trips`,
/// `governor.memcap.trips`, `governor.cancel.trips`, `governor.fault.trips`,
/// `governor.checkpoints`, `governor.bytes_accounted`,
/// `governor.fault.events`) via Counter::RaiseTo — they are monotone
/// process-wide totals, which is what Prometheus counter typing requires.
/// Called by the query drivers (eval, exec, REPL) and kernel scopes after
/// governed work; cheap enough to call unconditionally but skipped on
/// ungoverned hot paths.
void MirrorGovernorStats();

}  // namespace bagalg::obs

#endif  // BAGALG_OBS_METRICS_H_
