#include "src/net/epoll.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace bagalg::net {

namespace {

Status Errno(std::string_view what) {
  return Status::Internal("epoll: " + std::string(what) + ": " +
                          std::strerror(errno));
}

}  // namespace

Result<EpollLoop> EpollLoop::Create() {
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) return Errno("epoll_create1");
  EpollLoop loop;
  loop.epoll_fd_ = Fd(fd);
  loop.scratch_.resize(64);
  return loop;
}

Status EpollLoop::Add(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev = {};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Errno("ctl(ADD)");
  }
  ++registered_;
  return Status::Ok();
}

Status EpollLoop::Modify(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev = {};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Errno("ctl(MOD)");
  }
  return Status::Ok();
}

Status EpollLoop::Remove(int fd) {
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return Errno("ctl(DEL)");
  }
  if (registered_ > 0) --registered_;
  return Status::Ok();
}

Result<int> EpollLoop::Wait(std::vector<ReadyEvent>* out, int timeout_ms) {
  out->clear();
  // Grow the scratch array when a full batch suggests more were ready.
  if (scratch_.size() < registered_ && scratch_.size() < 4096) {
    scratch_.resize(std::min<size_t>(std::max(registered_, size_t{64}),
                                     size_t{4096}));
  }
  while (true) {
    const int n = ::epoll_wait(epoll_fd_.get(), scratch_.data(),
                               static_cast<int>(scratch_.size()), timeout_ms);
    if (n >= 0) {
      out->reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        out->push_back(
            ReadyEvent{scratch_[static_cast<size_t>(i)].data.u64,
                       scratch_[static_cast<size_t>(i)].events});
      }
      return n;
    }
    if (errno == EINTR) continue;
    return Errno("wait");
  }
}

}  // namespace bagalg::net
