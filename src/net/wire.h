#ifndef BAGALG_NET_WIRE_H_
#define BAGALG_NET_WIRE_H_

/// \file wire.h
/// Wire serialization for complex-object values.
///
/// The on-the-wire shape is JSON today, chosen over the REPL's printable
/// syntax because a client should never have to re-parse `'{{a: 3}}`:
///
///   atom   {"atom": "a"}
///   tuple  {"tuple": [v, v, ...]}
///   bag    {"bag": {"type": "{{U}}", "entries": [{"v": v, "n": "3"}, ...]}}
///
/// Multiplicities travel as *decimal strings* ("n"), never JSON numbers:
/// iterated powerset chains push counts far past 2^53, where every JSON
/// number representation silently corrupts. Entries arrive in canonical
/// order (sorted, distinct, positive), so a client can compare payloads
/// byte-wise.
///
/// A thin framing layer wraps payloads for the (future) binary format:
/// an 8-byte header — magic "BAG1", version, format tag, reserved pad —
/// then a u32 little-endian payload length. bagalgd speaks HTTP (which has
/// its own framing), so frames are exercised today by tests and the bench
/// harness; the point of landing the header now is that a binary format
/// later is a new tag, not a protocol break.

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg::net {

/// Serializes a value into the wire JSON described above. `table` resolves
/// atom names (defaults to the global table).
std::string ValueToWireJson(const Value& value,
                            const AtomTable* table = nullptr);

/// Serializes a bag (the common top-level case) into its wire JSON object.
std::string BagToWireJson(const Bag& bag, const AtomTable* table = nullptr);

// ------------------------------------------------------------- framing

enum class WireFormat : uint8_t {
  kJson = 1,
  // kBinary = 2 reserved: columnar counted-bag encoding.
};

inline constexpr char kFrameMagic[4] = {'B', 'A', 'G', '1'};
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
/// Frames larger than this are refused on decode — a length-prefixed
/// protocol must never let the prefix size an allocation unchecked.
inline constexpr size_t kMaxFrameBytes = 64u << 20;

/// Wraps `payload` in a frame header.
std::string EncodeFrame(WireFormat format, std::string_view payload);

struct DecodedFrame {
  WireFormat format;
  std::string payload;
};

/// Decodes one frame from the front of `bytes`.
///   - Complete frame: returns it; *consumed = header + payload size.
///   - Prefix of a valid frame: kUnavailable ("short frame"), *consumed = 0
///     — the caller should read more bytes and retry.
///   - Anything else (bad magic/version/format, oversized length):
///     kParseError; the connection is unrecoverable.
Result<DecodedFrame> DecodeFrame(std::string_view bytes, size_t* consumed);

}  // namespace bagalg::net

#endif  // BAGALG_NET_WIRE_H_
