#ifndef BAGALG_NET_WIRE_H_
#define BAGALG_NET_WIRE_H_

/// \file wire.h
/// Wire serialization for complex-object values: the JSON shape, the BAG1
/// binary shape, framing, and the statement envelopes built from them.
///
/// The JSON shape (format tag kJson), chosen over the REPL's printable
/// syntax because a client should never have to re-parse `'{{a: 3}}`:
///
///   atom   {"atom": "a"}
///   tuple  {"tuple": [v, v, ...]}
///   bag    {"bag": {"type": "{{U}}", "entries": [{"v": v, "n": "3"}, ...]}}
///
/// Multiplicities travel as *decimal strings* ("n"), never JSON numbers:
/// iterated powerset chains push counts far past 2^53, where every JSON
/// number representation silently corrupts. Entries arrive in canonical
/// order (sorted, distinct, positive), so a client can compare payloads
/// byte-wise.
///
/// The binary shape (format tag kBinary) skips JSON entirely. All integers
/// are little-endian; strings are u32 length + raw bytes:
///
///   value := 0x01 str(atom-name)
///          | 0x02 u32(arity) value*
///          | 0x03 str(element-type rendering) u64(entry-count)
///                 (value mult)*
///   mult  := 0x00 u64             -- fits uint64 (the common case)
///          | 0x01 str(decimal)    -- BigNat past 2^64, exact
///
/// The element-type string is Type::ToString output and is re-parsed with
/// lang::ParseType on decode, so untyped empty bags ("_") round-trip.
/// Decoding is defensive: depth-capped, every length checked against the
/// remaining bytes before it sizes an allocation, and bags are rebuilt
/// through Bag::Builder so a hostile peer cannot smuggle a non-canonical
/// bag into the engine.
///
/// A framing layer wraps payloads: a 12-byte header — magic "BAG1",
/// version, format tag, reserved pad, u32 little-endian payload length.
/// bagalgd uses frames as the body encoding of the binary statement
/// protocol (Content-Type: application/x-bag1): the request body is one
/// frame holding an encoded WireStatementRequest, the response body one
/// frame holding an encoded WireStatementResponse.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg::net {

class JsonValue;

/// Serializes a value into the wire JSON described above. `table` resolves
/// atom names (defaults to the global table).
std::string ValueToWireJson(const Value& value,
                            const AtomTable* table = nullptr);

/// Serializes a bag (the common top-level case) into its wire JSON object.
std::string BagToWireJson(const Bag& bag, const AtomTable* table = nullptr);

/// Decodes a parsed wire-JSON document back into a Value. Atom names are
/// interned into `table` (the global table if null). Exact inverse of
/// ValueToWireJson: multiplicity strings round-trip through BigNat, so
/// counts past 2^64 survive; unknown shapes are kParseError.
Result<Value> WireJsonToValue(const JsonValue& json,
                              AtomTable* table = nullptr);
/// Convenience overload: parses `json_text` first.
Result<Value> WireJsonToValue(std::string_view json_text,
                              AtomTable* table = nullptr);

/// Serializes a value into the BAG1 binary shape described above.
std::string ValueToWireBinary(const Value& value,
                              const AtomTable* table = nullptr);

/// Decodes a binary-shape value. The whole of `bytes` must be consumed.
/// Defensive against hostile input: kParseError on truncation, trailing
/// bytes, unknown tags, nesting past kMaxWireDepth, or a type string
/// lang::ParseType rejects.
Result<Value> WireBinaryToValue(std::string_view bytes,
                                AtomTable* table = nullptr);

/// Nesting bound for binary decode, mirroring kMaxJsonDepth: recursion
/// depth must never be attacker-controlled.
inline constexpr int kMaxWireDepth = 32;

// ------------------------------------------------------------- framing

enum class WireFormat : uint8_t {
  kJson = 1,
  kBinary = 2,
};

inline constexpr char kFrameMagic[4] = {'B', 'A', 'G', '1'};
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
/// Frames larger than this are refused on decode — a length-prefixed
/// protocol must never let the prefix size an allocation unchecked.
inline constexpr size_t kMaxFrameBytes = 64u << 20;

/// Wraps `payload` in a frame header.
std::string EncodeFrame(WireFormat format, std::string_view payload);

struct DecodedFrame {
  WireFormat format;
  std::string payload;
};

/// Decodes one frame from the front of `bytes`.
///   - Complete frame: returns it; *consumed = header + payload size.
///   - Prefix of a valid frame: kUnavailable ("short frame"), *consumed = 0
///     — the caller should read more bytes and retry.
///   - Anything else (bad magic/version/format, oversized length):
///     kParseError; the connection is unrecoverable.
Result<DecodedFrame> DecodeFrame(std::string_view bytes, size_t* consumed);

// ------------------------------------------- binary statement envelopes

/// The binary form of the POST /v1/statement request body (the JSON path's
/// {"session","statement","timeout_ms","memlimit_bytes"} object). Zero
/// timeout/memlimit means "server default", exactly like omitting the JSON
/// field.
struct WireStatementRequest {
  std::string session;
  std::string statement;
  uint64_t timeout_ms = 0;
  uint64_t memlimit_bytes = 0;
};

std::string EncodeStatementRequest(const WireStatementRequest& request);
Result<WireStatementRequest> DecodeStatementRequest(std::string_view bytes);

/// The binary form of the statement response envelope. `result` is
/// meaningful only when has_result; `error_*` only when !ok. `flight` is
/// the flight-recorder dump verbatim (JSON text — diagnostics stay
/// greppable even on the binary path).
struct WireStatementResponse {
  bool ok = false;
  std::string outcome;
  std::string output;
  uint64_t wall_us = 0;
  bool has_result = false;
  Value result;
  std::string error_code;
  std::string error_message;
  bool retryable = false;
  std::string flight;
};

std::string EncodeStatementResponse(const WireStatementResponse& response,
                                    const AtomTable* table = nullptr);
Result<WireStatementResponse> DecodeStatementResponse(
    std::string_view bytes, AtomTable* table = nullptr);

// -------------------------------------------------- streaming JSON bodies

/// Resumable wire-JSON serializer for chunked statement responses.
///
/// A powerset result can serialize to tens of megabytes; materializing that
/// next to a slow client would let one reader hold the peak. The streamer
/// instead holds the Value (an O(1) shared-tree copy) plus an explicit
/// cursor stack, and emits the envelope prefix, the value's wire JSON, and
/// the suffix in caller-bounded slices — the event loop pulls exactly as
/// much as its write buffer's low-water mark allows and lets EPOLLOUT
/// backpressure pace the rest.
class WireJsonStreamer {
 public:
  /// Streams `prefix` + ValueToWireJson(value) + `suffix`.
  WireJsonStreamer(std::string prefix, Value value, std::string suffix,
                   const AtomTable* table = nullptr);

  /// Appends at least one serialization step and at most ~`budget` bytes
  /// (may overshoot by one token: tokens are never split). Returns true
  /// while more output remains, false once the suffix has been emitted.
  bool Produce(size_t budget, std::string* out);

  bool done() const { return stage_ == Stage::kDone; }

 private:
  enum class Stage : uint8_t { kPrefix, kValue, kSuffix, kDone };
  struct Frame {
    enum class Kind : uint8_t { kTuple, kBag, kBagEntry } kind;
    const Value* container = nullptr;   // kTuple
    const Bag* bag = nullptr;           // kBag
    const BagEntry* entry = nullptr;    // kBagEntry
    size_t index = 0;
  };

  /// Emits one token; returns false when everything has been emitted.
  bool Step(std::string* out);
  void OpenValue(const Value& value, std::string* out);

  std::string prefix_;
  Value root_;  // owns the shared tree; Frame pointers alias into it
  std::string suffix_;
  const AtomTable* table_;
  Stage stage_ = Stage::kPrefix;
  const Value* pending_ = nullptr;
  std::vector<Frame> stack_;
};

}  // namespace bagalg::net

#endif  // BAGALG_NET_WIRE_H_
