#include "src/net/wire.h"

#include <cstring>
#include <utility>

#include "src/lang/parser.h"
#include "src/net/json_reader.h"
#include "src/obs/json.h"

namespace bagalg::net {

namespace {

void AppendValue(const Value& value, const AtomTable& table,
                 std::string* out);

void AppendBag(const Bag& bag, const AtomTable& table, std::string* out) {
  out->append("{\"bag\":{\"type\":");
  out->append(obs::JsonQuote(bag.type().ToString()));
  out->append(",\"entries\":[");
  bool first = true;
  for (const BagEntry& entry : bag.entries()) {
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"v\":");
    AppendValue(entry.value, table, out);
    out->append(",\"n\":");
    out->append(obs::JsonQuote(entry.count.ToString()));
    out->push_back('}');
  }
  out->append("]}}");
}

void AppendValue(const Value& value, const AtomTable& table,
                 std::string* out) {
  switch (value.kind()) {
    case Value::Kind::kAtom:
      out->append("{\"atom\":");
      out->append(obs::JsonQuote(table.NameOf(value.atom_id())));
      out->push_back('}');
      return;
    case Value::Kind::kTuple: {
      out->append("{\"tuple\":[");
      bool first = true;
      for (const Value& field : value.fields()) {
        if (!first) out->push_back(',');
        first = false;
        AppendValue(field, table, out);
      }
      out->append("]}");
      return;
    }
    case Value::Kind::kBag:
      AppendBag(value.bag(), table, out);
      return;
  }
}

void PutU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64Le(uint64_t v, std::string* out) {
  PutU32Le(static_cast<uint32_t>(v & 0xFFFFFFFFu), out);
  PutU32Le(static_cast<uint32_t>(v >> 32), out);
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

// ---------------------------------------------------------- binary shape

constexpr uint8_t kTagAtom = 0x01;
constexpr uint8_t kTagTuple = 0x02;
constexpr uint8_t kTagBag = 0x03;
constexpr uint8_t kMultU64 = 0x00;
constexpr uint8_t kMultDecimal = 0x01;

void PutStr(std::string_view s, std::string* out) {
  PutU32Le(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void PutMult(const Mult& count, std::string* out) {
  if (count.FitsUint64()) {
    out->push_back(static_cast<char>(kMultU64));
    PutU64Le(count.ToUint64().value(), out);
  } else {
    out->push_back(static_cast<char>(kMultDecimal));
    PutStr(count.ToString(), out);
  }
}

void PutValueBinary(const Value& value, const AtomTable& table,
                    std::string* out) {
  switch (value.kind()) {
    case Value::Kind::kAtom:
      out->push_back(static_cast<char>(kTagAtom));
      PutStr(table.NameOf(value.atom_id()), out);
      return;
    case Value::Kind::kTuple: {
      out->push_back(static_cast<char>(kTagTuple));
      PutU32Le(static_cast<uint32_t>(value.fields().size()), out);
      for (const Value& field : value.fields()) {
        PutValueBinary(field, table, out);
      }
      return;
    }
    case Value::Kind::kBag: {
      const Bag& bag = value.bag();
      out->push_back(static_cast<char>(kTagBag));
      PutStr(bag.element_type().ToString(), out);
      PutU64Le(static_cast<uint64_t>(bag.entries().size()), out);
      for (const BagEntry& entry : bag.entries()) {
        PutValueBinary(entry.value, table, out);
        PutMult(entry.count, out);
      }
      return;
    }
  }
}

/// Cursor over untrusted bytes: every Get checks the remainder first, so a
/// hostile length can never size a read past the buffer.
class BinReader {
 public:
  explicit BinReader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  Result<uint8_t> GetU8() {
    if (remaining() < 1) return Truncated();
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  Result<uint32_t> GetU32() {
    if (remaining() < 4) return Truncated();
    const uint32_t v = GetU32Le(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> GetU64() {
    BAGALG_ASSIGN_OR_RETURN(uint32_t lo, GetU32());
    BAGALG_ASSIGN_OR_RETURN(uint32_t hi, GetU32());
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }

  Result<std::string_view> GetStr() {
    BAGALG_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    if (remaining() < len) return Truncated();
    const std::string_view s = bytes_.substr(pos_, len);
    pos_ += len;
    return s;
  }

 private:
  static Status Truncated() {
    return Status::ParseError("wire: truncated binary value");
  }
  std::string_view bytes_;
  size_t pos_ = 0;
};

Result<Mult> GetMult(BinReader* in) {
  BAGALG_ASSIGN_OR_RETURN(uint8_t kind, in->GetU8());
  switch (kind) {
    case kMultU64: {
      BAGALG_ASSIGN_OR_RETURN(uint64_t v, in->GetU64());
      return Mult(v);
    }
    case kMultDecimal: {
      BAGALG_ASSIGN_OR_RETURN(std::string_view text, in->GetStr());
      return BigNat::FromDecimal(text);
    }
    default:
      return Status::ParseError("wire: unknown multiplicity kind " +
                                std::to_string(kind));
  }
}

Result<Value> GetValueBinary(BinReader* in, AtomTable* table, int depth) {
  if (depth > kMaxWireDepth) {
    return Status::ParseError("wire: value nests deeper than " +
                              std::to_string(kMaxWireDepth));
  }
  BAGALG_ASSIGN_OR_RETURN(uint8_t tag, in->GetU8());
  switch (tag) {
    case kTagAtom: {
      BAGALG_ASSIGN_OR_RETURN(std::string_view name, in->GetStr());
      if (name.empty()) {
        return Status::ParseError("wire: empty atom name");
      }
      return Value::Atom(table->Intern(name));
    }
    case kTagTuple: {
      BAGALG_ASSIGN_OR_RETURN(uint32_t arity, in->GetU32());
      // Each field needs at least a tag byte, so the remainder bounds the
      // honest arity — reject before reserving attacker-sized vectors.
      if (arity > in->remaining()) {
        return Status::ParseError("wire: tuple arity exceeds payload");
      }
      std::vector<Value> fields;
      fields.reserve(arity);
      for (uint32_t i = 0; i < arity; ++i) {
        BAGALG_ASSIGN_OR_RETURN(Value field,
                                GetValueBinary(in, table, depth + 1));
        fields.push_back(std::move(field));
      }
      return Value::Tuple(std::move(fields));
    }
    case kTagBag: {
      BAGALG_ASSIGN_OR_RETURN(std::string_view type_text, in->GetStr());
      BAGALG_ASSIGN_OR_RETURN(Type element_type,
                              lang::ParseType(type_text));
      BAGALG_ASSIGN_OR_RETURN(uint64_t count, in->GetU64());
      // Each entry is at least a tag byte plus a multiplicity kind byte.
      if (count > in->remaining()) {
        return Status::ParseError("wire: bag entry count exceeds payload");
      }
      Bag::Builder builder{std::move(element_type)};
      builder.Reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        BAGALG_ASSIGN_OR_RETURN(Value element,
                                GetValueBinary(in, table, depth + 1));
        BAGALG_ASSIGN_OR_RETURN(Mult mult, GetMult(in));
        builder.Add(std::move(element), std::move(mult));
      }
      // Builder re-canonicalizes and type-checks: a peer that sends
      // duplicates, misordered entries, or ill-typed elements gets a
      // well-formed bag or a typed error, never a corrupt canonical form.
      BAGALG_ASSIGN_OR_RETURN(Bag bag, std::move(builder).Build());
      return Value::FromBag(std::move(bag));
    }
    default:
      return Status::ParseError("wire: unknown value tag " +
                                std::to_string(tag));
  }
}

// ------------------------------------------------------------ JSON shape

Result<Value> JsonToValue(const JsonValue& json, AtomTable* table,
                          int depth) {
  if (depth > kMaxWireDepth) {
    return Status::ParseError("wire: value nests deeper than " +
                              std::to_string(kMaxWireDepth));
  }
  if (!json.is_object()) {
    return Status::ParseError("wire: value must be a JSON object");
  }
  if (const JsonValue* atom = json.Find("atom"); atom != nullptr) {
    if (!atom->is_string() || atom->string.empty()) {
      return Status::ParseError("wire: \"atom\" must be a nonempty string");
    }
    return Value::Atom(table->Intern(atom->string));
  }
  if (const JsonValue* tuple = json.Find("tuple"); tuple != nullptr) {
    if (tuple->kind != JsonValue::Kind::kArray) {
      return Status::ParseError("wire: \"tuple\" must be an array");
    }
    std::vector<Value> fields;
    fields.reserve(tuple->items.size());
    for (const JsonValue& item : tuple->items) {
      BAGALG_ASSIGN_OR_RETURN(Value field,
                              JsonToValue(item, table, depth + 1));
      fields.push_back(std::move(field));
    }
    return Value::Tuple(std::move(fields));
  }
  if (const JsonValue* bag = json.Find("bag"); bag != nullptr) {
    if (!bag->is_object()) {
      return Status::ParseError("wire: \"bag\" must be an object");
    }
    const std::string type_text = bag->GetString("type", "{{_}}");
    BAGALG_ASSIGN_OR_RETURN(Type bag_type, lang::ParseType(type_text));
    if (bag_type.kind() != Type::Kind::kBag) {
      return Status::ParseError("wire: bag \"type\" must be a bag type");
    }
    const JsonValue* entries = bag->Find("entries");
    if (entries == nullptr || entries->kind != JsonValue::Kind::kArray) {
      return Status::ParseError("wire: bag \"entries\" must be an array");
    }
    Bag::Builder builder{bag_type.element()};
    builder.Reserve(entries->items.size());
    for (const JsonValue& entry : entries->items) {
      if (!entry.is_object()) {
        return Status::ParseError("wire: bag entry must be an object");
      }
      const JsonValue* v = entry.Find("v");
      const JsonValue* n = entry.Find("n");
      if (v == nullptr || n == nullptr || !n->is_string()) {
        return Status::ParseError(
            "wire: bag entry needs \"v\" and string \"n\"");
      }
      BAGALG_ASSIGN_OR_RETURN(Value element, JsonToValue(*v, table, depth + 1));
      BAGALG_ASSIGN_OR_RETURN(Mult mult, BigNat::FromDecimal(n->string));
      builder.Add(std::move(element), std::move(mult));
    }
    BAGALG_ASSIGN_OR_RETURN(Bag rebuilt, std::move(builder).Build());
    return Value::FromBag(std::move(rebuilt));
  }
  return Status::ParseError(
      "wire: expected one of \"atom\", \"tuple\", \"bag\"");
}

AtomTable* TableOrGlobal(AtomTable* table) {
  return table != nullptr ? table : &GlobalAtomTable();
}

}  // namespace

std::string ValueToWireJson(const Value& value, const AtomTable* table) {
  std::string out;
  AppendValue(value, table != nullptr ? *table : GlobalAtomTable(), &out);
  return out;
}

std::string BagToWireJson(const Bag& bag, const AtomTable* table) {
  std::string out;
  AppendBag(bag, table != nullptr ? *table : GlobalAtomTable(), &out);
  return out;
}

Result<Value> WireJsonToValue(const JsonValue& json, AtomTable* table) {
  return JsonToValue(json, TableOrGlobal(table), 0);
}

Result<Value> WireJsonToValue(std::string_view json_text, AtomTable* table) {
  BAGALG_ASSIGN_OR_RETURN(JsonValue json, ParseJson(json_text));
  return WireJsonToValue(json, table);
}

std::string ValueToWireBinary(const Value& value, const AtomTable* table) {
  std::string out;
  PutValueBinary(value, table != nullptr ? *table : GlobalAtomTable(), &out);
  return out;
}

Result<Value> WireBinaryToValue(std::string_view bytes, AtomTable* table) {
  BinReader in(bytes);
  BAGALG_ASSIGN_OR_RETURN(Value value,
                          GetValueBinary(&in, TableOrGlobal(table), 0));
  if (in.remaining() != 0) {
    return Status::ParseError("wire: " + std::to_string(in.remaining()) +
                              " trailing bytes after binary value");
  }
  return value;
}

std::string EncodeFrame(WireFormat format, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(format));
  out.push_back('\0');  // reserved
  out.push_back('\0');  // reserved
  PutU32Le(static_cast<uint32_t>(payload.size()), &out);
  out.append(payload);
  return out;
}

Result<DecodedFrame> DecodeFrame(std::string_view bytes, size_t* consumed) {
  *consumed = 0;
  if (bytes.size() < kFrameHeaderBytes) {
    // Could still become a valid frame; but a wrong magic is detectable
    // from the very first bytes — fail fast instead of buffering garbage.
    const size_t have = std::min(bytes.size(), sizeof(kFrameMagic));
    if (std::memcmp(bytes.data(), kFrameMagic, have) != 0) {
      return Status::ParseError("wire: bad frame magic");
    }
    return Status::Unavailable("wire: short frame header");
  }
  if (std::memcmp(bytes.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::ParseError("wire: bad frame magic");
  }
  const auto version = static_cast<uint8_t>(bytes[4]);
  if (version != kFrameVersion) {
    return Status::ParseError("wire: unsupported frame version " +
                              std::to_string(version));
  }
  const auto format = static_cast<uint8_t>(bytes[5]);
  if (format != static_cast<uint8_t>(WireFormat::kJson) &&
      format != static_cast<uint8_t>(WireFormat::kBinary)) {
    return Status::ParseError("wire: unknown format tag " +
                              std::to_string(format));
  }
  const uint32_t length = GetU32Le(bytes.data() + 8);
  if (length > kMaxFrameBytes) {
    return Status::ParseError("wire: frame length " + std::to_string(length) +
                              " exceeds cap");
  }
  if (bytes.size() < kFrameHeaderBytes + length) {
    return Status::Unavailable("wire: short frame payload");
  }
  DecodedFrame frame;
  frame.format = static_cast<WireFormat>(format);
  frame.payload.assign(bytes.substr(kFrameHeaderBytes, length));
  *consumed = kFrameHeaderBytes + length;
  return frame;
}

// ------------------------------------------- binary statement envelopes

std::string EncodeStatementRequest(const WireStatementRequest& request) {
  std::string out;
  out.reserve(24 + request.session.size() + request.statement.size());
  PutStr(request.session, &out);
  PutStr(request.statement, &out);
  PutU64Le(request.timeout_ms, &out);
  PutU64Le(request.memlimit_bytes, &out);
  return out;
}

Result<WireStatementRequest> DecodeStatementRequest(std::string_view bytes) {
  BinReader in(bytes);
  WireStatementRequest request;
  BAGALG_ASSIGN_OR_RETURN(std::string_view session, in.GetStr());
  request.session.assign(session);
  BAGALG_ASSIGN_OR_RETURN(std::string_view statement, in.GetStr());
  request.statement.assign(statement);
  BAGALG_ASSIGN_OR_RETURN(request.timeout_ms, in.GetU64());
  BAGALG_ASSIGN_OR_RETURN(request.memlimit_bytes, in.GetU64());
  if (in.remaining() != 0) {
    return Status::ParseError("wire: trailing bytes after request envelope");
  }
  return request;
}

std::string EncodeStatementResponse(const WireStatementResponse& response,
                                    const AtomTable* table) {
  std::string out;
  out.push_back(response.ok ? '\x01' : '\x00');
  PutStr(response.outcome, &out);
  PutStr(response.output, &out);
  PutU64Le(response.wall_us, &out);
  out.push_back(response.has_result ? '\x01' : '\x00');
  if (response.has_result) {
    PutValueBinary(response.result,
                   table != nullptr ? *table : GlobalAtomTable(), &out);
  }
  PutStr(response.error_code, &out);
  PutStr(response.error_message, &out);
  out.push_back(response.retryable ? '\x01' : '\x00');
  PutStr(response.flight, &out);
  return out;
}

Result<WireStatementResponse> DecodeStatementResponse(std::string_view bytes,
                                                      AtomTable* table) {
  BinReader in(bytes);
  WireStatementResponse response;
  BAGALG_ASSIGN_OR_RETURN(uint8_t ok, in.GetU8());
  response.ok = ok != 0;
  BAGALG_ASSIGN_OR_RETURN(std::string_view outcome, in.GetStr());
  response.outcome.assign(outcome);
  BAGALG_ASSIGN_OR_RETURN(std::string_view output, in.GetStr());
  response.output.assign(output);
  BAGALG_ASSIGN_OR_RETURN(response.wall_us, in.GetU64());
  BAGALG_ASSIGN_OR_RETURN(uint8_t has_result, in.GetU8());
  response.has_result = has_result != 0;
  if (response.has_result) {
    BAGALG_ASSIGN_OR_RETURN(
        response.result, GetValueBinary(&in, TableOrGlobal(table), 0));
  }
  BAGALG_ASSIGN_OR_RETURN(std::string_view code, in.GetStr());
  response.error_code.assign(code);
  BAGALG_ASSIGN_OR_RETURN(std::string_view message, in.GetStr());
  response.error_message.assign(message);
  BAGALG_ASSIGN_OR_RETURN(uint8_t retryable, in.GetU8());
  response.retryable = retryable != 0;
  BAGALG_ASSIGN_OR_RETURN(std::string_view flight, in.GetStr());
  response.flight.assign(flight);
  if (in.remaining() != 0) {
    return Status::ParseError("wire: trailing bytes after response envelope");
  }
  return response;
}

// -------------------------------------------------- streaming JSON bodies

WireJsonStreamer::WireJsonStreamer(std::string prefix, Value value,
                                   std::string suffix,
                                   const AtomTable* table)
    : prefix_(std::move(prefix)),
      root_(std::move(value)),
      suffix_(std::move(suffix)),
      table_(table != nullptr ? table : &GlobalAtomTable()) {}

void WireJsonStreamer::OpenValue(const Value& value, std::string* out) {
  switch (value.kind()) {
    case Value::Kind::kAtom:
      out->append("{\"atom\":");
      out->append(obs::JsonQuote(table_->NameOf(value.atom_id())));
      out->push_back('}');
      return;
    case Value::Kind::kTuple:
      out->append("{\"tuple\":[");
      stack_.push_back(Frame{Frame::Kind::kTuple, &value, nullptr, nullptr, 0});
      return;
    case Value::Kind::kBag:
      out->append("{\"bag\":{\"type\":");
      out->append(obs::JsonQuote(value.bag().type().ToString()));
      out->append(",\"entries\":[");
      stack_.push_back(
          Frame{Frame::Kind::kBag, nullptr, &value.bag(), nullptr, 0});
      return;
  }
}

bool WireJsonStreamer::Step(std::string* out) {
  switch (stage_) {
    case Stage::kPrefix:
      out->append(prefix_);
      prefix_.clear();
      stage_ = Stage::kValue;
      pending_ = &root_;
      return true;
    case Stage::kValue:
      break;
    case Stage::kSuffix:
      out->append(suffix_);
      suffix_.clear();
      stage_ = Stage::kDone;
      return true;
    case Stage::kDone:
      return false;
  }

  if (pending_ != nullptr) {
    const Value& value = *pending_;
    pending_ = nullptr;
    OpenValue(value, out);
    return true;
  }
  if (stack_.empty()) {
    stage_ = Stage::kSuffix;
    return true;
  }
  Frame& top = stack_.back();
  switch (top.kind) {
    case Frame::Kind::kTuple: {
      const std::vector<Value>& fields = top.container->fields();
      if (top.index < fields.size()) {
        if (top.index > 0) out->push_back(',');
        pending_ = &fields[top.index++];
      } else {
        out->append("]}");
        stack_.pop_back();
      }
      return true;
    }
    case Frame::Kind::kBag: {
      const std::vector<BagEntry>& entries = top.bag->entries();
      if (top.index < entries.size()) {
        if (top.index > 0) out->push_back(',');
        const BagEntry& entry = entries[top.index++];
        out->append("{\"v\":");
        stack_.push_back(
            Frame{Frame::Kind::kBagEntry, nullptr, nullptr, &entry, 0});
        pending_ = &entry.value;
      } else {
        out->append("]}}");
        stack_.pop_back();
      }
      return true;
    }
    case Frame::Kind::kBagEntry: {
      out->append(",\"n\":");
      out->append(obs::JsonQuote(top.entry->count.ToString()));
      out->push_back('}');
      stack_.pop_back();
      return true;
    }
  }
  return true;
}

bool WireJsonStreamer::Produce(size_t budget, std::string* out) {
  const size_t start = out->size();
  while (out->size() - start < budget || out->size() == start) {
    if (!Step(out)) return false;
    if (stage_ == Stage::kDone) return false;
  }
  return true;
}

}  // namespace bagalg::net
