#include "src/net/wire.h"

#include <cstring>

#include "src/obs/json.h"

namespace bagalg::net {

namespace {

void AppendValue(const Value& value, const AtomTable& table,
                 std::string* out);

void AppendBag(const Bag& bag, const AtomTable& table, std::string* out) {
  out->append("{\"bag\":{\"type\":");
  out->append(obs::JsonQuote(bag.type().ToString()));
  out->append(",\"entries\":[");
  bool first = true;
  for (const BagEntry& entry : bag.entries()) {
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"v\":");
    AppendValue(entry.value, table, out);
    out->append(",\"n\":");
    out->append(obs::JsonQuote(entry.count.ToString()));
    out->push_back('}');
  }
  out->append("]}}");
}

void AppendValue(const Value& value, const AtomTable& table,
                 std::string* out) {
  switch (value.kind()) {
    case Value::Kind::kAtom:
      out->append("{\"atom\":");
      out->append(obs::JsonQuote(table.NameOf(value.atom_id())));
      out->push_back('}');
      return;
    case Value::Kind::kTuple: {
      out->append("{\"tuple\":[");
      bool first = true;
      for (const Value& field : value.fields()) {
        if (!first) out->push_back(',');
        first = false;
        AppendValue(field, table, out);
      }
      out->append("]}");
      return;
    }
    case Value::Kind::kBag:
      AppendBag(value.bag(), table, out);
      return;
  }
}

void PutU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

std::string ValueToWireJson(const Value& value, const AtomTable* table) {
  std::string out;
  AppendValue(value, table != nullptr ? *table : GlobalAtomTable(), &out);
  return out;
}

std::string BagToWireJson(const Bag& bag, const AtomTable* table) {
  std::string out;
  AppendBag(bag, table != nullptr ? *table : GlobalAtomTable(), &out);
  return out;
}

std::string EncodeFrame(WireFormat format, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(format));
  out.push_back('\0');  // reserved
  out.push_back('\0');  // reserved
  PutU32Le(static_cast<uint32_t>(payload.size()), &out);
  out.append(payload);
  return out;
}

Result<DecodedFrame> DecodeFrame(std::string_view bytes, size_t* consumed) {
  *consumed = 0;
  if (bytes.size() < kFrameHeaderBytes) {
    // Could still become a valid frame; but a wrong magic is detectable
    // from the very first bytes — fail fast instead of buffering garbage.
    const size_t have = std::min(bytes.size(), sizeof(kFrameMagic));
    if (std::memcmp(bytes.data(), kFrameMagic, have) != 0) {
      return Status::ParseError("wire: bad frame magic");
    }
    return Status::Unavailable("wire: short frame header");
  }
  if (std::memcmp(bytes.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::ParseError("wire: bad frame magic");
  }
  const auto version = static_cast<uint8_t>(bytes[4]);
  if (version != kFrameVersion) {
    return Status::ParseError("wire: unsupported frame version " +
                              std::to_string(version));
  }
  const auto format = static_cast<uint8_t>(bytes[5]);
  if (format != static_cast<uint8_t>(WireFormat::kJson)) {
    return Status::ParseError("wire: unknown format tag " +
                              std::to_string(format));
  }
  const uint32_t length = GetU32Le(bytes.data() + 8);
  if (length > kMaxFrameBytes) {
    return Status::ParseError("wire: frame length " + std::to_string(length) +
                              " exceeds cap");
  }
  if (bytes.size() < kFrameHeaderBytes + length) {
    return Status::Unavailable("wire: short frame payload");
  }
  DecodedFrame frame;
  frame.format = WireFormat::kJson;
  frame.payload.assign(bytes.substr(kFrameHeaderBytes, length));
  *consumed = kFrameHeaderBytes + length;
  return frame;
}

}  // namespace bagalg::net
