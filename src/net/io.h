#ifndef BAGALG_NET_IO_H_
#define BAGALG_NET_IO_H_

/// \file io.h
/// Socket I/O primitives for bagalgd, written for a hostile world.
///
/// Every primitive here (a) retries EINTR, (b) reports failures as typed
/// Status values — kUnavailable for the transient, connection-scoped kind —
/// and (c) consults the deterministic fault injector (`BAGALG_FAULT=io:...`)
/// so the chaos suite can make any read short, any write fail EPIPE-shaped,
/// and any accept stumble, on a reproducible schedule. Injected faults and
/// real network faults take the same code paths on purpose: the tests that
/// pass under `io:p=0.05` are the proof that a flaky network cannot crash
/// the server, only produce typed io-error outcomes.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/util/result.h"

namespace bagalg::net {

/// Owning file descriptor. Closing retries EINTR once and otherwise
/// swallows errors (there is nothing useful to do with a failed close on a
/// socket being torn down).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Reset();

 private:
  int fd_ = -1;
};

/// Opens a TCP listener on host:port (port 0 = kernel-assigned, read back
/// with LocalPort). SO_REUSEADDR is set so restarts do not trip TIME_WAIT.
Result<Fd> ListenOn(const std::string& host, uint16_t port, int backlog);

/// The port a listener is actually bound to.
Result<uint16_t> LocalPort(int listen_fd);

/// Accepts one connection. kUnavailable covers the transient accept
/// failures (EMFILE/ENFILE/ECONNABORTED/EAGAIN and injected ones) — the
/// accept loop should back off and keep going. Other errors (including a
/// listener shut down for drain) are kCancelled.
Result<Fd> AcceptConnection(int listen_fd);

/// Reads up to `len` bytes. Returns 0 at orderly EOF. An injected short
/// read transfers at most one byte (exercising every caller's resume
/// loop); an injected error is an ECONNRESET-shaped kUnavailable.
Result<size_t> ReadSome(int fd, char* buf, size_t len);

/// Writes all of `data`, looping over partial writes. SIGPIPE is
/// suppressed (MSG_NOSIGNAL); a dead peer is an EPIPE-shaped kUnavailable.
/// Injected short writes shrink individual transfers to one byte; injected
/// errors abort the write as kUnavailable.
Status WriteAll(int fd, std::string_view data);

/// Waits up to `timeout_ms` for `fd` to become readable. Returns 1 when
/// readable (or the peer hung up), 0 on timeout.
Result<int> PollReadable(int fd, int timeout_ms);

// ------------------------------------------------------- non-blocking io
//
// The epoll connection layer never blocks in a syscall on behalf of one
// peer. These primitives mirror ReadSome/WriteAll/AcceptConnection —
// same typed Status map, same BAGALG_FAULT=io: injection points — but
// report EAGAIN through `*would_block` instead of waiting, so the event
// loop can park the connection until the readiness notification.

/// Switches `fd` to O_NONBLOCK.
Status SetNonBlocking(int fd);

/// Reads up to `len` bytes without blocking. Returns 0 with
/// *would_block=true when the socket has no bytes ready; returns 0 with
/// *would_block=false at orderly EOF. Injected faults behave as in
/// ReadSome (short transfer = 1 byte, error = kUnavailable).
Result<size_t> ReadNonBlocking(int fd, char* buf, size_t len,
                               bool* would_block);

/// Writes a prefix of `data` without blocking; returns the byte count
/// actually queued (0 with *would_block=true when the send buffer is
/// full). Injected faults behave as in WriteAll.
Result<size_t> WriteNonBlocking(int fd, std::string_view data,
                                bool* would_block);

/// Accepts one connection without blocking; the returned socket is already
/// O_NONBLOCK. *would_block=true when the backlog is empty. Transient
/// accept failures (and injected ones) are kUnavailable exactly as in
/// AcceptConnection; a listener shut down for drain is kCancelled.
Result<Fd> AcceptNonBlocking(int listen_fd, bool* would_block);

/// An eventfd for cross-thread wakeups of an epoll loop: executor threads
/// Signal() it after publishing a completion; a signal-handler may too
/// (write(2) is async-signal-safe). The loop drains it with Drain().
class WakeupFd {
 public:
  static Result<WakeupFd> Create();
  int fd() const { return fd_.get(); }
  /// Makes the fd readable; async-signal-safe; never blocks (the eventfd
  /// counter saturates long before EAGAIN matters for a wakeup).
  void Signal() const;
  /// Consumes all pending signals.
  void Drain() const;

 private:
  Fd fd_;
};

}  // namespace bagalg::net

#endif  // BAGALG_NET_IO_H_
