#include "src/net/json_reader.h"

#include <cmath>
#include <cstdlib>

namespace bagalg::net {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind != Kind::kString) return std::string(fallback);
  return v->string;
}

uint64_t JsonValue::GetUint(std::string_view key, uint64_t fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind != Kind::kNumber) return fallback;
  const double d = v->number;
  if (!(d >= 0) || d != std::floor(d) || d > 9007199254740992.0) {
    return fallback;
  }
  return static_cast<uint64_t>(d);
}

namespace {

/// Recursive-descent parser over a string_view. Tracks the byte offset for
/// error messages; every failure path is a typed kParseError.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue root;
    BAGALG_RETURN_IF_ERROR(ParseValue(&root, 0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing content after JSON document");
    }
    return root;
  }

 private:
  Status Err(std::string_view what) const {
    return Status::ParseError("json: " + std::string(what) + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Err(std::string("expected '") + c + "'");
    }
    return Status::Ok();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) return Err("nesting too deep");
    SkipWs();
    if (AtEnd()) return Err("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ConsumeWord("null");
      default:
        return ParseNumber(out);
    }
  }

  Status ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Err("unrecognized token");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  Status ParseKeyword(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (Peek() == 't') {
      out->boolean = true;
      return ConsumeWord("true");
    }
    out->boolean = false;
    return ConsumeWord("false");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.' || Peek() == 'e' || Peek() == 'E' ||
                        Peek() == '+' || Peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("unrecognized token");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      pos_ = start;
      return Err("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = d;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    BAGALG_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (AtEnd()) return Err("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return Err("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          BAGALG_RETURN_IF_ERROR(ParseHex4(&code));
          // Surrogate pairs: a high surrogate must be followed by \uDC00..
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!Consume('\\') || !Consume('u')) {
              return Err("lone high surrogate");
            }
            uint32_t low = 0;
            BAGALG_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Err("bad low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Err("lone low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Err("bad hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    BAGALG_RETURN_IF_ERROR(Expect('['));
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue item;
      BAGALG_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->items.push_back(std::move(item));
      SkipWs();
      if (Consume(']')) return Status::Ok();
      BAGALG_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    BAGALG_RETURN_IF_ERROR(Expect('{'));
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWs();
      std::string key;
      BAGALG_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      BAGALG_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      BAGALG_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return Status::Ok();
      BAGALG_RETURN_IF_ERROR(Expect(','));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace bagalg::net
