#ifndef BAGALG_NET_SERVER_H_
#define BAGALG_NET_SERVER_H_

/// \file server.h
/// bagalgd — a fault-tolerant multi-client BALG server.
///
/// Architecture (robustness-first, in the order a request meets it):
///
///   epoll event loop ── per-connection state machines ── bounded executor
///        (1 thread)        (reading|executing|writing)        pool
///                                                              │
///                                         per-session ScriptRunner (REPL)
///
///   * One event-loop thread owns every connection. Connections are
///     non-blocking sockets registered level-triggered in epoll; an idle
///     keep-alive connection costs one fd and a small parser buffer — no
///     thread. HTTP/1.1 requests parse incrementally (net/http.h) under
///     hard caps; pipelined requests are answered in order, and keep-alive
///     re-arms the connection for the next request the moment a response
///     finishes writing. Sessions are *not* connections: a session (named
///     by the client) holds a private Database, query journal, flight
///     recorder, budget, and governor defaults — the exact REPL engine
///     (lang::ScriptRunner) behind a mutex — and survives disconnects
///     until closed or the server drains.
///   * Admission control: statement execution happens on a pool of N
///     executor threads fed by a *bounded* queue. A full queue sheds the
///     request with a typed 429 and a Retry-After derived from queue depth
///     — predictable latency for admitted work instead of collapse.
///     Connection and session counts are capped the same way (503).
///     Executors hand results back through a completion queue and an
///     eventfd wakeup; the loop renders and writes the response.
///   * Large results stream: a statement whose result bag has at least
///     stream_entries_threshold distinct entries is sent with chunked
///     transfer-encoding, serialized incrementally against the write
///     buffer's watermarks, so one slow reader holds bounded memory —
///     EPOLLOUT backpressure paces the serializer.
///   * The BAG1 binary protocol (Content-Type: application/x-bag1) skips
///     JSON both ways: the request body is one BAG1 frame holding a binary
///     statement envelope, the response one frame holding the binary
///     result — exact BigNat multiplicities, no quoting, no re-parse.
///   * Cost-budget preflight: when a budget is configured, statements whose
///     statically estimated output exceeds it are refused (E001 → 422)
///     before touching the executor — never executed.
///   * Per-request deadlines and memcaps run through the same
///     ResourceGovernor as the REPL: a tripped statement returns a typed
///     error (504/507/499) with the flight-recorder dump attached, and the
///     session keeps serving.
///   * Graceful drain: RequestShutdown (async-signal-safe, call it from a
///     SIGTERM handler) stops the accept path, sheds queued work as 503,
///     cancels in-flight statements through their session tokens, lets the
///     loop finish writing in-flight responses (a cancelled statement's
///     499 reaches its client), flushes every session journal to
///     journal_dir, then releases Wait().
///
/// Endpoints:
///   POST /v1/statement      {"session":S,"statement":L[,"timeout_ms":N]
///                            [,"memlimit_bytes":N]} → typed outcome;
///                           application/x-bag1 body = BAG1 binary frame
///   POST /v1/session/close  {"session":S} → flush + drop the session
///   GET  /healthz           build identity + serving|draining + gauges
///   GET  /metrics           Prometheus text exposition (global registry)
///   GET  /trace             recent journal entries across live sessions
///
/// Every terminal request outcome is typed: ok / refused / shed / tripped
/// (deadline, memcap, cancel, fault) / io-error / error — see docs/SERVER.md.

#include <cstdint>
#include <memory>
#include <string>

#include "src/net/http.h"
#include "src/util/result.h"

namespace bagalg::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned; read back with port().
  uint16_t port = 0;
  /// Executor pool width — the statement-level concurrency.
  unsigned executors = 4;
  /// Admission queue bound; beyond it requests are shed (429).
  size_t queue_capacity = 64;
  /// Connection cap; beyond it accepts are answered 503 and closed. Idle
  /// connections are nearly free under the event loop, so the default is
  /// sized for keep-alive fleets, not handler threads.
  size_t max_connections = 4096;
  /// Session cap; creating one beyond it is 503.
  size_t max_sessions = 128;
  /// Default per-statement wall deadline for new sessions (0 = off).
  uint64_t default_timeout_ms = 0;
  /// Default per-statement memory cap for new sessions (0 = off).
  uint64_t default_memlimit_bytes = 0;
  /// Cost-budget admission ceiling for new sessions (0 = off): statements
  /// with a statically estimated output above this are refused, E001 → 422.
  uint64_t cost_budget = 0;
  /// When nonempty, session journals are exported here as
  /// <dir>/session-<name>.jsonl on session close and on drain.
  std::string journal_dir;
  HttpLimits http;
  int backlog = 128;
  /// Result bags with at least this many distinct entries are sent with
  /// chunked transfer-encoding, serialized incrementally under write-buffer
  /// backpressure instead of materialized. 0 disables streaming.
  size_t stream_entries_threshold = 512;
};

/// Point-in-time server statistics (also the /healthz payload's numbers).
struct ServerStats {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t refused = 0;   // budget preflight said no (E001)
  uint64_t shed = 0;      // admission queue full / draining
  uint64_t tripped = 0;   // governor: deadline, memcap, cancel, fault
  uint64_t errors = 0;    // typed statement errors (parse, type, ...)
  uint64_t io_errors = 0; // connections torn by (injected or real) io faults
  uint64_t sessions_created = 0;
  uint64_t sessions_closed = 0;
  uint64_t connections_accepted = 0;
  uint64_t keepalive_reuses = 0;  // requests served on a reused connection
  uint64_t pipelined = 0;  // requests that arrived behind an earlier one
  uint64_t bag1_requests = 0;     // statements on the binary wire path
  uint64_t streamed_responses = 0;  // chunked large-bag responses
  size_t sessions_live = 0;
  size_t connections_live = 0;
  size_t queue_depth = 0;
  size_t epoll_fds = 0;  // fds registered with the event loop
  bool draining = false;
};

class Server {
 public:
  /// Binds, spawns the executor pool and event loop, and returns a
  /// serving instance.
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  /// Stops without draining politely if the caller never asked; prefer
  /// RequestShutdown + Wait.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port.
  uint16_t port() const;

  /// Begins a graceful drain. Async-signal-safe (an atomic store, a
  /// shutdown(2), and an eventfd write): call it straight from a
  /// SIGTERM/SIGINT handler.
  void RequestShutdown();

  /// Blocks until a requested drain completes: accepting stopped, queue
  /// shed, in-flight statements cancelled or finished, their responses
  /// written, the loop joined, session journals flushed.
  void Wait();

  bool draining() const;
  ServerStats stats() const;

 private:
  Server();
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bagalg::net

#endif  // BAGALG_NET_SERVER_H_
