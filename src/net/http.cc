#include "src/net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "src/net/io.h"
#include "src/util/status.h"

namespace bagalg::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Blocks until at least one more byte lands in `buffer`, polling
/// `should_stop` at limits.read_poll_ms granularity. kCancelled when the
/// peer closed (clean) or a drain began; kUnavailable on io faults.
Status FillMore(int fd, std::string* buffer, const HttpLimits& limits,
                const std::function<bool()>& should_stop) {
  char chunk[4096];
  while (true) {
    if (should_stop && should_stop()) {
      return Status::Cancelled("draining");
    }
    BAGALG_ASSIGN_OR_RETURN(int ready,
                            PollReadable(fd, limits.read_poll_ms));
    if (ready == 0) continue;
    BAGALG_ASSIGN_OR_RETURN(size_t n, ReadSome(fd, chunk, sizeof(chunk)));
    if (n == 0) return Status::Cancelled("connection closed");
    buffer->append(chunk, n);
    return Status::Ok();
  }
}

Status ParseRequestHead(std::string_view head, HttpRequest* out) {
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::ParseError("http: malformed request line");
  }
  out->method = std::string(request_line.substr(0, sp1));
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::ParseError("http: unsupported version");
  }
  if (target.empty() || target[0] != '/') {
    return Status::ParseError("http: bad request target");
  }
  const size_t q = target.find('?');
  out->path = std::string(target.substr(0, q));
  out->query =
      q == std::string_view::npos ? "" : std::string(target.substr(q + 1));

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("http: malformed header line");
    }
    const std::string name = ToLower(Trim(line.substr(0, colon)));
    if (name.empty()) return Status::ParseError("http: empty header name");
    out->headers[name] = std::string(Trim(line.substr(colon + 1)));
  }
  return Status::Ok();
}

}  // namespace

Result<HttpRequest> ReadHttpRequest(int fd, std::string* buffer,
                                    const HttpLimits& limits,
                                    const std::function<bool()>& should_stop) {
  // Accumulate until the header terminator, within the header cap.
  size_t head_end;
  while ((head_end = buffer->find("\r\n\r\n")) == std::string::npos) {
    if (buffer->size() > limits.max_header_bytes) {
      return Status::ResourceExhausted("http: header block exceeds " +
                                       std::to_string(limits.max_header_bytes) +
                                       " bytes");
    }
    BAGALG_RETURN_IF_ERROR(FillMore(fd, buffer, limits, should_stop));
  }

  HttpRequest request;
  BAGALG_RETURN_IF_ERROR(
      ParseRequestHead(std::string_view(*buffer).substr(0, head_end),
                       &request));

  size_t body_len = 0;
  if (auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || it->second.empty()) {
      return Status::ParseError("http: bad Content-Length");
    }
    if (v > limits.max_body_bytes) {
      return Status::ResourceExhausted("http: body of " + it->second +
                                       " bytes exceeds cap of " +
                                       std::to_string(limits.max_body_bytes));
    }
    body_len = static_cast<size_t>(v);
  }
  if (request.headers.count("transfer-encoding") != 0) {
    return Status::ParseError("http: chunked bodies unsupported");
  }

  const size_t body_start = head_end + 4;
  while (buffer->size() < body_start + body_len) {
    // Mid-request EOF/drain is a vanished peer, not a clean close: the
    // request is torn, so surface it as a connection-level io error.
    Status st = FillMore(fd, buffer, limits, should_stop);
    if (!st.ok()) {
      if (st.code() == StatusCode::kCancelled) {
        return Status::Unavailable("io: connection closed mid-request");
      }
      return st;
    }
  }
  request.body = buffer->substr(body_start, body_len);
  buffer->erase(0, body_start + body_len);
  return request;
}

Status WriteHttpResponse(int fd, const HttpResponse& response) {
  std::string out;
  out.reserve(256 + response.body.size());
  out.append("HTTP/1.1 ");
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(HttpReasonPhrase(response.status));
  out.append("\r\nContent-Type: ");
  out.append(response.content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(response.body.size()));
  for (const auto& [name, value] : response.extra_headers) {
    out.append("\r\n");
    out.append(name);
    out.append(": ");
    out.append(value);
  }
  if (response.close) out.append("\r\nConnection: close");
  out.append("\r\n\r\n");
  out.append(response.body);
  return WriteAll(fd, out);
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Content";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 507: return "Insufficient Storage";
    default:  return "Status";
  }
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kUnsupported:
      return 501;
    // Admission refusal (E001): the statement was never executed and never
    // will be — a client bug or an oversized ask, not server load.
    case StatusCode::kBudgetExceeded:
      return 422;
    // Governor memcap trip: the statement ran and outgrew its cap.
    case StatusCode::kResourceExhausted:
      return 507;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

}  // namespace bagalg::net
