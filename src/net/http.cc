#include "src/net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/net/io.h"
#include "src/util/status.h"

namespace bagalg::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Blocks until at least one more byte lands in `buffer`, polling
/// `should_stop` at limits.read_poll_ms granularity. kCancelled when the
/// peer closed (clean) or a drain began; kUnavailable on io faults.
Status FillMore(int fd, std::string* buffer, const HttpLimits& limits,
                const std::function<bool()>& should_stop) {
  char chunk[4096];
  while (true) {
    if (should_stop && should_stop()) {
      return Status::Cancelled("draining");
    }
    BAGALG_ASSIGN_OR_RETURN(int ready,
                            PollReadable(fd, limits.read_poll_ms));
    if (ready == 0) continue;
    BAGALG_ASSIGN_OR_RETURN(size_t n, ReadSome(fd, chunk, sizeof(chunk)));
    if (n == 0) return Status::Cancelled("connection closed");
    buffer->append(chunk, n);
    return Status::Ok();
  }
}

Status ParseRequestHead(std::string_view head, HttpRequest* out) {
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::ParseError("http: malformed request line");
  }
  out->method = std::string(request_line.substr(0, sp1));
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::ParseError("http: unsupported version");
  }
  out->http11 = version == "HTTP/1.1";
  if (target.empty() || target[0] != '/') {
    return Status::ParseError("http: bad request target");
  }
  const size_t q = target.find('?');
  out->path = std::string(target.substr(0, q));
  out->query =
      q == std::string_view::npos ? "" : std::string(target.substr(q + 1));

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("http: malformed header line");
    }
    const std::string name = ToLower(Trim(line.substr(0, colon)));
    if (name.empty()) return Status::ParseError("http: empty header name");
    out->headers[name] = std::string(Trim(line.substr(colon + 1)));
  }
  return Status::Ok();
}

}  // namespace

bool RequestWantsClose(const HttpRequest& request) {
  if (!request.http11) return true;  // no HTTP/1.0 keep-alive
  const auto it = request.headers.find("connection");
  return it != request.headers.end() &&
         ToLower(it->second).find("close") != std::string::npos;
}

// ------------------------------------------------------------ HttpReader

void HttpReader::Feed(std::string_view bytes) {
  // Compact before growing: once the consumed prefix dominates the buffer
  // (heavy pipelining), shift the live bytes down so memory stays bounded
  // by the in-flight data, not the connection's lifetime traffic.
  if (pos_ > 4096 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    scan_ -= pos_;
    if (have_head_) body_start_ -= pos_;
    pos_ = 0;
  }
  buffer_.append(bytes);
}

Result<bool> HttpReader::Next(HttpRequest* out) {
  if (!have_head_) {
    // Hunt for the head terminator, resuming where the last scan stopped
    // (minus 3 so a terminator split across Feed calls is still found).
    const size_t from = std::max(pos_, scan_ >= 3 ? scan_ - 3 : pos_);
    const size_t head_end = buffer_.find("\r\n\r\n", from);
    scan_ = buffer_.size();
    if (head_end == std::string::npos) {
      // The cap applies to *this request's* header bytes — everything
      // from pos_ — never to leftovers of previously parsed requests.
      if (buffer_.size() - pos_ > limits_.max_header_bytes) {
        return Status::ResourceExhausted(
            "http: header block exceeds " +
            std::to_string(limits_.max_header_bytes) + " bytes");
      }
      return false;
    }
    pending_ = HttpRequest();
    if (head_end - pos_ > limits_.max_header_bytes) {
      return Status::ResourceExhausted(
          "http: header block exceeds " +
          std::to_string(limits_.max_header_bytes) + " bytes");
    }
    BAGALG_RETURN_IF_ERROR(ParseRequestHead(
        std::string_view(buffer_).substr(pos_, head_end - pos_), &pending_));
    body_len_ = 0;
    if (auto it = pending_.headers.find("content-length");
        it != pending_.headers.end()) {
      char* end = nullptr;
      const unsigned long long v =
          std::strtoull(it->second.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || it->second.empty()) {
        return Status::ParseError("http: bad Content-Length");
      }
      if (v > limits_.max_body_bytes) {
        return Status::ResourceExhausted(
            "http: body of " + it->second + " bytes exceeds cap of " +
            std::to_string(limits_.max_body_bytes));
      }
      body_len_ = static_cast<size_t>(v);
    }
    if (pending_.headers.count("transfer-encoding") != 0) {
      return Status::ParseError("http: chunked bodies unsupported");
    }
    body_start_ = head_end + 4;
    have_head_ = true;
  }
  if (buffer_.size() < body_start_ + body_len_) return false;
  pending_.body = buffer_.substr(body_start_, body_len_);
  *out = std::move(pending_);
  pending_ = HttpRequest();
  // Bytes after the body — the next pipelined request — stay buffered.
  pos_ = body_start_ + body_len_;
  scan_ = pos_;
  have_head_ = false;
  return true;
}

std::string HttpReader::TakeRemainder() {
  std::string rest = buffer_.substr(pos_);
  buffer_.clear();
  pos_ = scan_ = 0;
  have_head_ = false;
  pending_ = HttpRequest();
  return rest;
}

Result<HttpRequest> ReadHttpRequest(int fd, std::string* buffer,
                                    const HttpLimits& limits,
                                    const std::function<bool()>& should_stop) {
  HttpReader reader(limits);
  reader.Feed(*buffer);
  buffer->clear();
  while (true) {
    HttpRequest request;
    auto parsed = reader.Next(&request);
    if (!parsed.ok()) {
      *buffer = reader.TakeRemainder();
      return parsed.status();
    }
    if (*parsed) {
      *buffer = reader.TakeRemainder();
      return request;
    }
    std::string more;
    const Status st = FillMore(fd, &more, limits, should_stop);
    if (!st.ok()) {
      const bool mid_request = reader.mid_request();
      *buffer = reader.TakeRemainder();
      // Mid-request EOF/drain is a vanished peer, not a clean close: the
      // request is torn, so surface it as a connection-level io error.
      if (mid_request && st.code() == StatusCode::kCancelled) {
        return Status::Unavailable("io: connection closed mid-request");
      }
      return st;
    }
    reader.Feed(more);
  }
}

std::string FormatHttpResponseHead(const HttpResponse& response, bool chunked,
                                   size_t content_length) {
  std::string out;
  out.reserve(256);
  out.append("HTTP/1.1 ");
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(HttpReasonPhrase(response.status));
  out.append("\r\nContent-Type: ");
  out.append(response.content_type);
  if (chunked) {
    out.append("\r\nTransfer-Encoding: chunked");
  } else {
    out.append("\r\nContent-Length: ");
    out.append(std::to_string(content_length));
  }
  for (const auto& [name, value] : response.extra_headers) {
    out.append("\r\n");
    out.append(name);
    out.append(": ");
    out.append(value);
  }
  if (response.close) out.append("\r\nConnection: close");
  out.append("\r\n\r\n");
  return out;
}

std::string FormatHttpResponse(const HttpResponse& response) {
  std::string out =
      FormatHttpResponseHead(response, /*chunked=*/false,
                             response.body.size());
  out.append(response.body);
  return out;
}

void AppendHttpChunk(std::string_view data, std::string* out) {
  if (data.empty()) return;
  char size_line[32];
  const int n =
      std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  out->append(size_line, static_cast<size_t>(n));
  out->append(data);
  out->append("\r\n");
}

void AppendHttpLastChunk(std::string* out) { out->append("0\r\n\r\n"); }

Status WriteHttpResponse(int fd, const HttpResponse& response) {
  return WriteAll(fd, FormatHttpResponse(response));
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Content";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 507: return "Insufficient Storage";
    default:  return "Status";
  }
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kUnsupported:
      return 501;
    // Admission refusal (E001): the statement was never executed and never
    // will be — a client bug or an oversized ask, not server load.
    case StatusCode::kBudgetExceeded:
      return 422;
    // Governor memcap trip: the statement ran and outgrew its cap.
    case StatusCode::kResourceExhausted:
      return 507;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

}  // namespace bagalg::net
