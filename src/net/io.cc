#include "src/net/io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/util/fault.h"

namespace bagalg::net {

namespace {

Status Errno(std::string_view what) {
  return Status::Unavailable("io: " + std::string(what) + ": " +
                             std::strerror(errno));
}

}  // namespace

void Fd::Reset() {
  if (fd_ >= 0) {
    if (::close(fd_) < 0 && errno == EINTR) ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> ListenOn(const std::string& host, uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("io: bad listen address: " + host);
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) return Errno("listen");
  return fd;
}

Result<uint16_t> LocalPort(int listen_fd) {
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<Fd> AcceptConnection(int listen_fd) {
  // An injected accept fault models the kernel transiently refusing
  // (EMFILE-shaped); both injected kinds are the same refusal here.
  if (fault::InjectIoFault() != fault::IoFaultKind::kNone) {
    return Status::Unavailable("io: injected accept failure");
  }
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
        errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
        errno == ENOMEM) {
      return Errno("accept");
    }
    // EBADF/EINVAL: the drain path shut the listener down under us.
    return Status::Cancelled("io: listener closed: " +
                             std::string(std::strerror(errno)));
  }
}

Result<size_t> ReadSome(int fd, char* buf, size_t len) {
  if (len == 0) return static_cast<size_t>(0);
  switch (fault::InjectIoFault()) {
    case fault::IoFaultKind::kShort:
      len = 1;
      break;
    case fault::IoFaultKind::kError:
      return Status::Unavailable("io: injected disconnect (recv)");
    case fault::IoFaultKind::kNone:
      break;
  }
  while (true) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Status WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    size_t chunk = data.size() - off;
    switch (fault::InjectIoFault()) {
      case fault::IoFaultKind::kShort:
        chunk = 1;
        break;
      case fault::IoFaultKind::kError:
        return Status::Unavailable("io: injected broken pipe (send)");
      case fault::IoFaultKind::kNone:
        break;
    }
    const ssize_t n = ::send(fd, data.data() + off, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<int> PollReadable(int fd, int timeout_ms) {
  pollfd pfd = {};
  pfd.fd = fd;
  pfd.events = POLLIN;
  while (true) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

Result<size_t> ReadNonBlocking(int fd, char* buf, size_t len,
                               bool* would_block) {
  *would_block = false;
  if (len == 0) return static_cast<size_t>(0);
  switch (fault::InjectIoFault()) {
    case fault::IoFaultKind::kShort:
      len = 1;
      break;
    case fault::IoFaultKind::kError:
      return Status::Unavailable("io: injected disconnect (recv)");
    case fault::IoFaultKind::kNone:
      break;
  }
  while (true) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return static_cast<size_t>(0);
    }
    return Errno("recv");
  }
}

Result<size_t> WriteNonBlocking(int fd, std::string_view data,
                                bool* would_block) {
  *would_block = false;
  if (data.empty()) return static_cast<size_t>(0);
  size_t chunk = data.size();
  switch (fault::InjectIoFault()) {
    case fault::IoFaultKind::kShort:
      chunk = 1;
      break;
    case fault::IoFaultKind::kError:
      return Status::Unavailable("io: injected broken pipe (send)");
    case fault::IoFaultKind::kNone:
      break;
  }
  while (true) {
    const ssize_t n = ::send(fd, data.data(), chunk, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return static_cast<size_t>(0);
    }
    return Errno("send");
  }
}

Result<Fd> AcceptNonBlocking(int listen_fd, bool* would_block) {
  *would_block = false;
  if (fault::InjectIoFault() != fault::IoFaultKind::kNone) {
    return Status::Unavailable("io: injected accept failure");
  }
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      *would_block = true;
      return Fd();
    }
    if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
        errno == ENOBUFS || errno == ENOMEM || errno == EPERM ||
        errno == EPROTO) {
      return Errno("accept");
    }
    return Status::Cancelled("io: listener closed: " +
                             std::string(std::strerror(errno)));
  }
}

Result<WakeupFd> WakeupFd::Create() {
  const int fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fd < 0) return Errno("eventfd");
  WakeupFd wake;
  wake.fd_ = Fd(fd);
  return wake;
}

void WakeupFd::Signal() const {
  // Async-signal-safe: one write(2). EAGAIN means the counter is already
  // huge — the loop is guaranteed to wake, so dropping the increment is
  // fine. EINTR on an eventfd write cannot leave it half-done.
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(fd_.get(), &one, sizeof(one));
}

void WakeupFd::Drain() const {
  uint64_t count = 0;
  while (::read(fd_.get(), &count, sizeof(count)) > 0) {
  }
}

}  // namespace bagalg::net
