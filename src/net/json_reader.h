#ifndef BAGALG_NET_JSON_READER_H_
#define BAGALG_NET_JSON_READER_H_

/// \file json_reader.h
/// A small, defensive JSON parser for bagalgd request bodies.
///
/// obs/json.h is emission-only by design; the server is the first bagalg
/// component that must *consume* JSON, and it consumes it from untrusted
/// clients, so the parser is written robustness-first: recursion is bounded
/// (kMaxDepth), inputs must be consumed entirely, numbers are plain doubles
/// (bagalg multiplicities travel as decimal strings precisely because JSON
/// numbers lose precision past 2^53), and every malformation is a typed
/// kParseError naming the byte offset — never a crash, never an accepted
/// prefix.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/result.h"

namespace bagalg::net {

/// A parsed JSON document node. Plain aggregate (no variant gymnastics):
/// exactly one of the payload members is meaningful, selected by kind.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_string() const { return kind == Kind::kString; }

  /// First member with `key` in an object; nullptr when absent or when this
  /// is not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Member `key` as a string; `fallback` when absent or not a string.
  std::string GetString(std::string_view key,
                        std::string_view fallback = "") const;

  /// Member `key` as a non-negative integer; `fallback` when absent, not a
  /// number, negative, or not integral.
  uint64_t GetUint(std::string_view key, uint64_t fallback = 0) const;
};

/// Nesting bound: a request body has no business nesting deeper than this,
/// and the bound is what keeps parse recursion off attacker control.
inline constexpr int kMaxJsonDepth = 32;

/// Parses `text` as one complete JSON document (trailing whitespace
/// allowed, anything else after the document is a kParseError).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace bagalg::net

#endif  // BAGALG_NET_JSON_READER_H_
