#include "src/net/server.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "src/analysis/static_cost.h"
#include "src/exec/compile.h"
#include "src/lang/script.h"
#include "src/net/io.h"
#include "src/net/json_reader.h"
#include "src/net/wire.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/util/build_info.h"

namespace bagalg::net {

namespace {

/// Session names are also journal file names: the charset excludes every
/// path metacharacter by construction.
bool ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

/// One resident session: the REPL engine behind a mutex. The cancellation
/// token is a copy of the runner's (they share the flag), kept outside the
/// mutex so drain can cancel an in-flight statement without blocking on it.
struct Session {
  explicit Session(std::string name) : id(std::move(name)) {
    cancel = runner.cancel_token();
  }
  const std::string id;
  std::mutex mu;
  lang::ScriptRunner runner;  // guarded by mu
  CancellationToken cancel;   // lock-free Cancel
};

/// What one statement execution produced, shipped from the executor back
/// to the connection handler through a promise.
struct StatementResult {
  Status status = Status::Ok();
  std::string output;
  std::string result_json;  // wire JSON of the result value, when one exists
  std::string outcome;      // "ok","budget-refused","deadline","memcap",...
  std::string flight;       // flight-recorder dump when the governor tripped
  uint64_t wall_us = 0;
};

struct ExecJob {
  std::shared_ptr<Session> session;
  std::string statement;
  uint64_t timeout_ms = 0;
  uint64_t memlimit_bytes = 0;
  std::promise<StatementResult> done;
};

/// Aggregates the precise per-statement outcome word into the five typed
/// buckets of the acceptance contract.
enum class Bucket { kOk, kRefused, kShed, kTripped, kError };

Bucket BucketFor(const std::string& outcome) {
  if (outcome == "ok") return Bucket::kOk;
  if (outcome == "budget-refused") return Bucket::kRefused;
  if (outcome == "shed" || outcome == "draining") return Bucket::kShed;
  if (outcome == "deadline" || outcome == "memcap" || outcome == "cancel" ||
      outcome == "fault") {
    return Bucket::kTripped;
  }
  return Bucket::kError;
}

/// Outcome word for statements that never reached the journal (parse
/// errors, shed, refusal surfaced only as a Status).
std::string OutcomeForStatus(const Status& status) {
  if (status.ok()) return "ok";
  switch (status.code()) {
    case StatusCode::kBudgetExceeded: return "budget-refused";
    case StatusCode::kDeadlineExceeded: return "deadline";
    case StatusCode::kResourceExhausted: return "memcap";
    case StatusCode::kCancelled: return "cancel";
    case StatusCode::kUnavailable: return "shed";
    default: return "error";
  }
}

uint64_t EffectiveLimit(uint64_t requested, uint64_t server_default) {
  if (requested == 0) return server_default;
  if (server_default == 0) return requested;
  return std::min(requested, server_default);
}

}  // namespace

class Server::Impl {
 public:
  explicit Impl(ServerOptions options) : options_(std::move(options)) {}

  ~Impl() {
    RequestShutdown();
    Wait();
  }

  Status Start() {
    BAGALG_ASSIGN_OR_RETURN(
        listen_fd_,
        ListenOn(options_.host, options_.port, options_.backlog));
    BAGALG_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
    listen_fd_raw_.store(listen_fd_.get(), std::memory_order_release);
    const unsigned executors = std::max(1u, options_.executors);
    executors_.reserve(executors);
    for (unsigned i = 0; i < executors; ++i) {
      executors_.emplace_back([this] { ExecutorLoop(); });
    }
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
  }

  uint16_t port() const { return port_; }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  void RequestShutdown() {
    // Async-signal-safe: one atomic store plus shutdown(2). The shutdown
    // kicks the accept loop out of its blocking accept.
    draining_.store(true, std::memory_order_release);
    const int fd = listen_fd_raw_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

  void Wait() {
    while (!draining()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::lock_guard<std::mutex> lock(teardown_mu_);
    if (torn_down_) return;
    Teardown();
    torn_down_ = true;
  }

  ServerStats stats() const {
    ServerStats s;
    s.requests = requests_.load();
    s.ok = ok_.load();
    s.refused = refused_.load();
    s.shed = shed_.load();
    s.tripped = tripped_.load();
    s.errors = errors_.load();
    s.io_errors = io_errors_.load();
    s.sessions_created = sessions_created_.load();
    s.sessions_closed = sessions_closed_.load();
    s.connections_accepted = connections_accepted_.load();
    s.connections_live = connections_live_.load();
    s.draining = draining();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      s.sessions_live = sessions_.size();
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      s.queue_depth = queue_.size();
    }
    return s;
  }

 private:
  // ------------------------------------------------------------ accept

  void AcceptLoop() {
    while (!draining()) {
      auto conn = AcceptConnection(listen_fd_.get());
      ReapFinishedHandlers();
      if (!conn.ok()) {
        if (draining() ||
            conn.status().code() == StatusCode::kCancelled) {
          break;
        }
        // Transient refusal (injected or EMFILE-shaped): the pending
        // connection stays in the backlog; back off briefly and retry.
        accept_retries_.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      connections_accepted_.fetch_add(1);
      if (connections_live_.load() >= options_.max_connections) {
        // Over the cap: answer with a typed 503 and close. Best-effort —
        // the peer may already be gone.
        HttpResponse resp = ErrorResponse(
            503, Status::Unavailable("connection limit reached"), "shed");
        resp.close = true;
        resp.extra_headers.emplace_back("Retry-After", "1");
        (void)WriteHttpResponse(conn->get(), resp);
        shed_.fetch_add(1);
        continue;
      }
      std::lock_guard<std::mutex> lock(handlers_mu_);
      const uint64_t id = next_handler_id_++;
      connections_live_.fetch_add(1);
      handlers_.emplace(
          id, std::thread([this, id, fd = std::move(*conn)]() mutable {
            HandleConnection(id, std::move(fd));
          }));
    }
  }

  void ReapFinishedHandlers() {
    std::vector<std::thread> done;
    {
      std::lock_guard<std::mutex> lock(handlers_mu_);
      for (const uint64_t id : finished_handlers_) {
        auto it = handlers_.find(id);
        if (it != handlers_.end()) {
          done.push_back(std::move(it->second));
          handlers_.erase(it);
        }
      }
      finished_handlers_.clear();
    }
    for (std::thread& t : done) t.join();
  }

  // -------------------------------------------------------- connection

  void HandleConnection(uint64_t id, Fd fd) {
    std::string buffer;
    while (!draining()) {
      auto request = ReadHttpRequest(fd.get(), &buffer, options_.http,
                                     [this] { return draining(); });
      if (!request.ok()) {
        const StatusCode code = request.status().code();
        if (code == StatusCode::kParseError) {
          errors_.fetch_add(1);
          HttpResponse resp = ErrorResponse(400, request.status(), "error");
          resp.close = true;
          (void)WriteHttpResponse(fd.get(), resp);
        } else if (code == StatusCode::kResourceExhausted) {
          errors_.fetch_add(1);
          const bool header_cap =
              request.status().message().find("header") != std::string::npos;
          HttpResponse resp = ErrorResponse(header_cap ? 431 : 413,
                                            request.status(), "error");
          resp.close = true;
          (void)WriteHttpResponse(fd.get(), resp);
        } else if (code == StatusCode::kUnavailable) {
          io_errors_.fetch_add(1);
        }
        // kCancelled: orderly close or drain — nothing to answer.
        break;
      }
      requests_.fetch_add(1);
      HttpResponse response = Route(*request);
      const auto conn_header = request->headers.find("connection");
      if (conn_header != request->headers.end() &&
          conn_header->second.find("close") != std::string::npos) {
        response.close = true;
      }
      const Status write_status = WriteHttpResponse(fd.get(), response);
      if (!write_status.ok()) {
        io_errors_.fetch_add(1);
        break;
      }
      if (response.close) break;
    }
    connections_live_.fetch_sub(1);
    std::lock_guard<std::mutex> lock(handlers_mu_);
    finished_handlers_.push_back(id);
  }

  // ----------------------------------------------------------- routing

  HttpResponse Route(const HttpRequest& request) {
    if (request.method == "GET") {
      if (request.path == "/healthz") return Healthz();
      if (request.path == "/metrics") return Metrics();
      if (request.path == "/trace") return Trace();
    } else if (request.method == "POST") {
      if (request.path == "/v1/statement") return Statement(request);
      if (request.path == "/v1/session/close") return CloseSession(request);
    }
    if (request.path == "/healthz" || request.path == "/metrics" ||
        request.path == "/trace" || request.path == "/v1/statement" ||
        request.path == "/v1/session/close") {
      errors_.fetch_add(1);
      return ErrorResponse(
          405, Status::InvalidArgument("method not allowed on " +
                                       request.path),
          "error");
    }
    errors_.fetch_add(1);
    return ErrorResponse(
        404, Status::NotFound("no such endpoint: " + request.path), "error");
  }

  HttpResponse Healthz() {
    const ServerStats s = stats();
    std::string body = "{\"status\":";
    body += s.draining ? "\"draining\"" : "\"serving\"";
    body += ",\"build\":" + BuildInfoJson();
    body += ",\"engine_default\":" +
            obs::JsonQuote(exec::EngineName(exec::EngineFromEnv()));
    body += ",\"sessions\":" + std::to_string(s.sessions_live);
    body += ",\"connections\":" + std::to_string(s.connections_live);
    body += ",\"queue_depth\":" + std::to_string(s.queue_depth);
    body += ",\"requests\":" + std::to_string(s.requests);
    body += "}";
    HttpResponse resp;
    resp.body = std::move(body);
    return resp;
  }

  HttpResponse Metrics() {
    obs::MirrorGovernorStats();
    MirrorServerStats();
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = obs::GlobalMetrics().Snapshot().ToPrometheusText();
    return resp;
  }

  HttpResponse Trace() {
    std::vector<std::shared_ptr<Session>> sessions;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions.reserve(sessions_.size());
      for (const auto& [name, session] : sessions_) {
        sessions.push_back(session);
      }
    }
    std::string body = "{\"sessions\":[";
    bool first_session = true;
    for (const auto& session : sessions) {
      std::lock_guard<std::mutex> lock(session->mu);
      if (!first_session) body += ",";
      first_session = false;
      body += "{\"id\":" + obs::JsonQuote(session->id) + ",\"entries\":[";
      bool first_entry = true;
      for (const auto& entry : session->runner.journal().Tail(8)) {
        if (!first_entry) body += ",";
        first_entry = false;
        body += entry.ToJsonLine();
      }
      body += "]}";
    }
    body += "]}";
    HttpResponse resp;
    resp.body = std::move(body);
    return resp;
  }

  HttpResponse Statement(const HttpRequest& request) {
    auto doc = ParseJson(request.body);
    if (!doc.ok() || !doc->is_object()) {
      errors_.fetch_add(1);
      return ErrorResponse(
          400,
          doc.ok() ? Status::InvalidArgument("request body must be a JSON "
                                             "object")
                   : doc.status(),
          "error");
    }
    const std::string session_name = doc->GetString("session", "default");
    if (!ValidSessionName(session_name)) {
      errors_.fetch_add(1);
      return ErrorResponse(
          400,
          Status::InvalidArgument(
              "session names are [A-Za-z0-9_-]{1,64}"),
          "error");
    }
    const JsonValue* statement = doc->Find("statement");
    if (statement == nullptr || !statement->is_string() ||
        statement->string.empty()) {
      errors_.fetch_add(1);
      return ErrorResponse(
          400, Status::InvalidArgument("missing \"statement\" string"),
          "error");
    }

    if (draining()) return ShedResponse(503, "draining for shutdown");

    auto session = GetOrCreateSession(session_name);
    if (!session.ok()) return ShedResponse(503, session.status().message());

    ExecJob job;
    job.session = *session;
    job.statement = statement->string;
    job.timeout_ms = EffectiveLimit(doc->GetUint("timeout_ms", 0),
                                    options_.default_timeout_ms);
    job.memlimit_bytes = EffectiveLimit(doc->GetUint("memlimit_bytes", 0),
                                        options_.default_memlimit_bytes);
    std::future<StatementResult> done = job.done.get_future();

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (draining()) return ShedResponse(503, "draining for shutdown");
      if (queue_.size() >= options_.queue_capacity) {
        const size_t depth = queue_.size();
        const unsigned lanes = std::max(1u, options_.executors);
        const uint64_t retry_after = 1 + depth / lanes;
        HttpResponse resp = ShedResponse(429, "admission queue full");
        resp.extra_headers.clear();
        resp.extra_headers.emplace_back("Retry-After",
                                        std::to_string(retry_after));
        return resp;
      }
      queue_.push_back(std::move(job));
    }
    queue_cv_.notify_one();

    StatementResult result = done.get();
    const Bucket bucket = BucketFor(result.outcome);
    switch (bucket) {
      case Bucket::kOk: ok_.fetch_add(1); break;
      case Bucket::kRefused: refused_.fetch_add(1); break;
      case Bucket::kShed: shed_.fetch_add(1); break;
      case Bucket::kTripped: tripped_.fetch_add(1); break;
      case Bucket::kError: errors_.fetch_add(1); break;
    }
    obs::GlobalMetrics()
        .GetHistogram("server.request.wall_us")
        ->Observe(result.wall_us);

    if (result.status.ok()) {
      std::string body = "{\"ok\":true,\"outcome\":\"ok\",\"session\":" +
                         obs::JsonQuote(session_name);
      body += ",\"output\":" + obs::JsonQuote(result.output);
      if (!result.result_json.empty()) {
        body += ",\"result\":" + result.result_json;
      }
      body += ",\"wall_us\":" + std::to_string(result.wall_us) + "}";
      HttpResponse resp;
      resp.body = std::move(body);
      return resp;
    }
    const int http_status =
        result.outcome == "draining" ? 503
                                     : HttpStatusForCode(result.status.code());
    HttpResponse resp = ErrorResponse(http_status, result.status,
                                      result.outcome, result.flight);
    if (IsRetryable(result.status.code())) {
      resp.extra_headers.emplace_back("Retry-After", "1");
    }
    return resp;
  }

  HttpResponse CloseSession(const HttpRequest& request) {
    auto doc = ParseJson(request.body);
    if (!doc.ok() || !doc->is_object()) {
      errors_.fetch_add(1);
      return ErrorResponse(
          400,
          doc.ok() ? Status::InvalidArgument("request body must be a JSON "
                                             "object")
                   : doc.status(),
          "error");
    }
    const std::string session_name = doc->GetString("session", "");
    std::shared_ptr<Session> session;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      auto it = sessions_.find(session_name);
      if (it != sessions_.end()) {
        session = it->second;
        sessions_.erase(it);
      }
    }
    if (session == nullptr) {
      errors_.fetch_add(1);
      return ErrorResponse(
          404, Status::NotFound("no such session: " + session_name),
          "error");
    }
    FlushSessionJournal(*session);
    sessions_closed_.fetch_add(1);
    ok_.fetch_add(1);
    HttpResponse resp;
    resp.body = "{\"ok\":true,\"outcome\":\"ok\",\"closed\":" +
                obs::JsonQuote(session_name) + "}";
    return resp;
  }

  // ---------------------------------------------------------- sessions

  Result<std::shared_ptr<Session>> GetOrCreateSession(
      const std::string& name) {
    std::shared_ptr<Session> created;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      auto it = sessions_.find(name);
      if (it != sessions_.end()) return it->second;
      if (sessions_.size() >= options_.max_sessions) {
        return Status::Unavailable("session limit reached (" +
                                   std::to_string(options_.max_sessions) +
                                   ")");
      }
      created = std::make_shared<Session>(name);
      sessions_.emplace(name, created);
    }
    sessions_created_.fetch_add(1);
    {
      // No contention possible yet, but the runner's invariants are "hold
      // mu"; configure the session defaults under it.
      std::lock_guard<std::mutex> lock(created->mu);
      created->runner.set_timeout_ms(options_.default_timeout_ms);
      created->runner.set_memlimit_bytes(options_.default_memlimit_bytes);
      if (options_.cost_budget > 0) {
        analysis::CostBudget budget;
        budget.max_estimated_size = BigNat(options_.cost_budget);
        created->runner.set_budget(budget);
      }
    }
    return created;
  }

  void FlushSessionJournal(Session& session) {
    if (options_.journal_dir.empty()) return;
    std::lock_guard<std::mutex> lock(session.mu);
    // ValidSessionName guarantees the id is path-metacharacter-free.
    (void)session.runner.journal().ExportJsonl(
        options_.journal_dir + "/session-" + session.id + ".jsonl");
  }

  // --------------------------------------------------------- executors

  void ExecutorLoop() {
    while (true) {
      ExecJob job;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [this] {
          return stop_executors_ || !queue_.empty();
        });
        if (queue_.empty()) {
          if (stop_executors_) return;
          continue;
        }
        job = std::move(queue_.front());
        queue_.pop_front();
        if (draining()) {
          // Queued-but-not-started work is shed, not run: drain latency
          // must not depend on queue depth.
          lock.unlock();
          StatementResult shed;
          shed.status = Status::Unavailable("draining for shutdown");
          shed.outcome = "draining";
          job.done.set_value(std::move(shed));
          continue;
        }
        active_executions_.fetch_add(1);
      }
      StatementResult result = Execute(job);
      job.done.set_value(std::move(result));
      active_executions_.fetch_sub(1);
      idle_cv_.notify_all();
    }
  }

  StatementResult Execute(ExecJob& job) {
    Session& session = *job.session;
    std::lock_guard<std::mutex> lock(session.mu);
    session.runner.set_timeout_ms(job.timeout_ms);
    session.runner.set_memlimit_bytes(job.memlimit_bytes);
    const uint64_t journal_before = session.runner.journal().total();
    const auto start = std::chrono::steady_clock::now();
    Result<std::string> output = session.runner.RunLine(job.statement);
    const auto wall = std::chrono::steady_clock::now() - start;

    StatementResult result;
    result.wall_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(wall).count());
    result.flight = session.runner.TakeFlightDump();
    if (output.ok()) {
      result.output = *output;
      if (session.runner.last_result().has_value()) {
        result.result_json =
            ValueToWireJson(*session.runner.last_result());
      }
    } else {
      result.status = output.status();
    }
    if (session.runner.journal().total() > journal_before) {
      const auto tail = session.runner.journal().Tail(1);
      if (!tail.empty()) result.outcome = tail.back().outcome;
    }
    if (result.outcome.empty()) {
      result.outcome = OutcomeForStatus(result.status);
    }
    obs::MirrorGovernorStats();
    return result;
  }

  // ------------------------------------------------------------- drain

  void Teardown() {
    if (accept_thread_.joinable()) accept_thread_.join();

    // Wake the executors so they shed everything still queued, then keep
    // cancelling in-flight statements until the pool runs dry. The repeat
    // matters: RunLine re-arms the session token at statement start, so a
    // single Cancel can race a statement that slipped past the drain
    // check; a periodic sweep always lands.
    queue_cv_.notify_all();
    while (true) {
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        if (queue_.empty() && active_executions_.load() == 0) break;
      }
      CancelAllSessions();
      std::unique_lock<std::mutex> lock(queue_mu_);
      idle_cv_.wait_for(lock, std::chrono::milliseconds(20), [this] {
        return queue_.empty() && active_executions_.load() == 0;
      });
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stop_executors_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& t : executors_) t.join();
    executors_.clear();

    // Handlers observe the drain flag between requests; any handler
    // blocked on a statement future has been released above. Move the
    // threads out before joining: a handler's last act is to lock
    // handlers_mu_ and report itself finished, so joining under the lock
    // would deadlock.
    std::vector<std::thread> handlers;
    {
      std::lock_guard<std::mutex> lock(handlers_mu_);
      finished_handlers_.clear();
      for (auto& [id, t] : handlers_) handlers.push_back(std::move(t));
      handlers_.clear();
    }
    for (std::thread& t : handlers) {
      if (t.joinable()) t.join();
    }

    std::vector<std::shared_ptr<Session>> sessions;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (const auto& [name, session] : sessions_) {
        sessions.push_back(session);
      }
      sessions_.clear();
    }
    for (const auto& session : sessions) {
      FlushSessionJournal(*session);
      sessions_closed_.fetch_add(1);
    }
    obs::MirrorGovernorStats();
    MirrorServerStats();
    listen_fd_.Reset();
    listen_fd_raw_.store(-1, std::memory_order_release);
  }

  void CancelAllSessions() {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& [name, session] : sessions_) {
      session->cancel.Cancel();
    }
  }

  // ------------------------------------------------------------ shared

  HttpResponse ShedResponse(int http_status, std::string_view why) {
    shed_.fetch_add(1);
    HttpResponse resp = ErrorResponse(
        http_status, Status::Unavailable(std::string(why)), "shed");
    resp.extra_headers.emplace_back("Retry-After", "1");
    return resp;
  }

  HttpResponse ErrorResponse(int http_status, const Status& status,
                             std::string_view outcome,
                             std::string_view flight = "") {
    std::string body = "{\"ok\":false,\"outcome\":";
    body += obs::JsonQuote(outcome);
    body += ",\"error\":{\"code\":";
    body += obs::JsonQuote(StatusCodeName(status.code()));
    body += ",\"message\":";
    body += obs::JsonQuote(status.message());
    body += ",\"retryable\":";
    body += IsRetryable(status.code()) ? "true" : "false";
    body += "}";
    if (!flight.empty()) {
      body += ",\"flight\":" + obs::JsonQuote(flight);
    }
    body += "}";
    HttpResponse resp;
    resp.status = http_status;
    resp.body = std::move(body);
    return resp;
  }

  void MirrorServerStats() {
    auto& metrics = obs::GlobalMetrics();
    const ServerStats s = stats();
    metrics.GetCounter("server.requests")->RaiseTo(s.requests);
    metrics.GetCounter("server.outcome.ok")->RaiseTo(s.ok);
    metrics.GetCounter("server.outcome.refused")->RaiseTo(s.refused);
    metrics.GetCounter("server.outcome.shed")->RaiseTo(s.shed);
    metrics.GetCounter("server.outcome.tripped")->RaiseTo(s.tripped);
    metrics.GetCounter("server.outcome.error")->RaiseTo(s.errors);
    metrics.GetCounter("server.io.errors")->RaiseTo(s.io_errors);
    metrics.GetCounter("server.accept.retries")
        ->RaiseTo(accept_retries_.load());
    metrics.GetCounter("server.sessions.created")
        ->RaiseTo(s.sessions_created);
    metrics.GetCounter("server.sessions.closed")->RaiseTo(s.sessions_closed);
    metrics.GetCounter("server.connections.accepted")
        ->RaiseTo(s.connections_accepted);
    metrics.GetGauge("server.sessions.live")
        ->Set(static_cast<int64_t>(s.sessions_live));
    metrics.GetGauge("server.connections.live")
        ->Set(static_cast<int64_t>(s.connections_live));
    metrics.GetGauge("server.queue.depth")
        ->Set(static_cast<int64_t>(s.queue_depth));
  }

  const ServerOptions options_;
  Fd listen_fd_;
  std::atomic<int> listen_fd_raw_{-1};
  uint16_t port_ = 0;

  std::atomic<bool> draining_{false};
  std::mutex teardown_mu_;
  bool torn_down_ = false;  // guarded by teardown_mu_

  std::thread accept_thread_;
  mutable std::mutex handlers_mu_;
  uint64_t next_handler_id_ = 1;                 // guarded by handlers_mu_
  std::map<uint64_t, std::thread> handlers_;     // guarded by handlers_mu_
  std::vector<uint64_t> finished_handlers_;      // guarded by handlers_mu_

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<ExecJob> queue_;      // guarded by queue_mu_
  bool stop_executors_ = false;    // guarded by queue_mu_
  std::atomic<uint64_t> active_executions_{0};
  std::vector<std::thread> executors_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> tripped_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<uint64_t> accept_retries_{0};
  std::atomic<uint64_t> sessions_created_{0};
  std::atomic<uint64_t> sessions_closed_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<size_t> connections_live_{0};
};

Server::Server() = default;
Server::~Server() = default;

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  auto server = std::unique_ptr<Server>(new Server());
  server->impl_ = std::make_unique<Impl>(std::move(options));
  BAGALG_RETURN_IF_ERROR(server->impl_->Start());
  return server;
}

uint16_t Server::port() const { return impl_->port(); }
void Server::RequestShutdown() { impl_->RequestShutdown(); }
void Server::Wait() { impl_->Wait(); }
bool Server::draining() const { return impl_->draining(); }
ServerStats Server::stats() const { return impl_->stats(); }

}  // namespace bagalg::net
