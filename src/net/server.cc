#include "src/net/server.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <optional>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/analysis/static_cost.h"
#include "src/exec/compile.h"
#include "src/lang/script.h"
#include "src/net/epoll.h"
#include "src/net/io.h"
#include "src/net/json_reader.h"
#include "src/net/wire.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/util/build_info.h"

namespace bagalg::net {

namespace {

// Epoll tags: connections use their ids, which start above the reserved
// values and never recycle — a completion for a closed connection can
// never be misdelivered to a newer one.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeupTag = 1;
constexpr uint64_t kFirstConnId = 2;

// Write-buffer watermarks: the streamer refills the out buffer when the
// unwritten remainder drops below the low mark and each refill slice is
// one stream unit — a slow reader therefore holds at most roughly
// high-water bytes of serialized response, never the whole body.
constexpr size_t kWriteLowWater = 64 * 1024;
constexpr size_t kStreamSliceBytes = 64 * 1024;
// At most this many accepts are drained per listener event, so one
// connect storm cannot starve live connections of loop time.
constexpr int kAcceptBatch = 64;
// Per-event read ceiling, for the same fairness reason.
constexpr size_t kReadBatchBytes = 256 * 1024;
// How many responses (sync or in-flight statements) one connection may
// have outstanding before parsing pauses. Parse-ahead keeps the executor
// pool fed and lets consecutive responses coalesce into one write, while
// the cap stops a single pipelining client from monopolizing the
// admission queue.
constexpr size_t kMaxPipelineDepth = 16;

const char kBag1ContentType[] = "application/x-bag1";

/// Session names are also journal file names: the charset excludes every
/// path metacharacter by construction.
bool ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

/// One resident session: the REPL engine behind a mutex. The cancellation
/// token is a copy of the runner's (they share the flag), kept outside the
/// mutex so drain can cancel an in-flight statement without blocking on it.
struct Session {
  explicit Session(std::string name) : id(std::move(name)) {
    cancel = runner.cancel_token();
  }
  const std::string id;
  std::mutex mu;
  lang::ScriptRunner runner;  // guarded by mu
  CancellationToken cancel;   // lock-free Cancel

  // FIFO turnstile: with parse-ahead, several statements of one session
  // can sit in the executor queue at once, and two lanes could otherwise
  // run them out of program order (`let X` racing `eval X`). Tickets are
  // issued in enqueue order (under the queue mutex), and a lane blocks
  // until its ticket is served. Deadlock-free because the queue pops
  // FIFO: the lane holding the now-serving ticket always exists.
  uint64_t next_ticket = 0;  // guarded by the server's queue mutex
  std::mutex turn_mu;
  std::condition_variable turn_cv;
  uint64_t now_serving = 0;  // guarded by turn_mu
};

/// What one statement execution produced, shipped from the executor back
/// to the event loop through the completion queue. The result travels as
/// a Value (an O(1) shared-tree handle), not serialized text: the loop
/// decides per-connection whether to materialize JSON, stream it chunked,
/// or encode BAG1 binary.
struct StatementResult {
  Status status = Status::Ok();
  std::string output;
  std::optional<Value> result;
  std::string outcome;      // "ok","budget-refused","deadline","memcap",...
  std::string flight;       // flight-recorder dump when the governor tripped
  uint64_t wall_us = 0;
};

struct ExecJob {
  enum class Kind : uint8_t { kStatement, kCloseSession };
  Kind kind = Kind::kStatement;
  uint64_t conn_id = 0;
  uint64_t seq = 0;     // response slot on the connection
  uint64_t ticket = 0;  // session turnstile position
  std::shared_ptr<Session> session;
  std::string session_name;
  std::string statement;
  uint64_t timeout_ms = 0;
  uint64_t memlimit_bytes = 0;
  bool bag1 = false;        // answer on the binary wire path
  bool want_close = false;  // connection closes after the response
};

struct Completion {
  ExecJob job;
  StatementResult result;
};

/// Aggregates the precise per-statement outcome word into the five typed
/// buckets of the acceptance contract.
enum class Bucket { kOk, kRefused, kShed, kTripped, kError };

Bucket BucketFor(const std::string& outcome) {
  if (outcome == "ok") return Bucket::kOk;
  if (outcome == "budget-refused") return Bucket::kRefused;
  if (outcome == "shed" || outcome == "draining") return Bucket::kShed;
  if (outcome == "deadline" || outcome == "memcap" || outcome == "cancel" ||
      outcome == "fault") {
    return Bucket::kTripped;
  }
  return Bucket::kError;
}

/// Outcome word for statements that never reached the journal (parse
/// errors, shed, refusal surfaced only as a Status).
std::string OutcomeForStatus(const Status& status) {
  if (status.ok()) return "ok";
  switch (status.code()) {
    case StatusCode::kBudgetExceeded: return "budget-refused";
    case StatusCode::kDeadlineExceeded: return "deadline";
    case StatusCode::kResourceExhausted: return "memcap";
    case StatusCode::kCancelled: return "cancel";
    case StatusCode::kUnavailable: return "shed";
    default: return "error";
  }
}

uint64_t EffectiveLimit(uint64_t requested, uint64_t server_default) {
  if (requested == 0) return server_default;
  if (server_default == 0) return requested;
  return std::min(requested, server_default);
}

bool IsBag1Request(const HttpRequest& request) {
  const auto it = request.headers.find("content-type");
  return it != request.headers.end() &&
         it->second.find(kBag1ContentType) != std::string::npos;
}

/// One response owed to a connection, in request order. A slot is either
/// ready (bytes materialized, or a chunked head plus a streamer) or still
/// waiting on its statement's completion. Slots only leave the queue from
/// the front, and only once ready — pipelined responses therefore always
/// go out in the order their requests arrived, no matter how the executor
/// lanes interleave.
struct ResponseSlot {
  bool ready = false;
  bool close_after = false;  // connection closes once this slot is written
  std::string bytes;
  std::unique_ptr<WireJsonStreamer> stream;  // chunked body, if streamed
};

/// One connection's state machine, owned exclusively by the loop thread.
/// Parse-ahead: the loop keeps parsing pipelined requests (up to
/// kMaxPipelineDepth outstanding responses) while earlier statements are
/// still executing, so the executor pool stays fed and consecutive
/// responses coalesce into one write.
struct Conn {
  uint64_t id = 0;
  Fd fd;
  HttpReader reader;
  std::string out;      // promoted response bytes awaiting write
  size_t out_off = 0;   // written prefix of `out`
  std::unique_ptr<WireJsonStreamer> stream;  // active chunked body
  std::deque<ResponseSlot> slots;  // responses owed, in request order
  uint64_t base_seq = 0;           // seq of slots.front()
  size_t in_flight = 0;            // slots still waiting on the executor
  bool close_pending = false;   // a close-marked response was queued
  bool close_after_write = false;
  bool read_closed = false;  // EOF/RDHUP seen; no further requests
  bool eof_handled = false;  // the one-shot EOF accounting ran
  bool finish_after_flush = false;  // EOF: close once owed bytes are out
  bool doomed = false;       // close deferred to end of loop iteration
  uint64_t requests_served = 0;
  uint32_t interest = 0;  // epoll mask currently registered

  size_t pending_out() const { return out.size() - out_off; }
  uint64_t next_seq() const { return base_seq + slots.size(); }
  bool idle() const {
    return in_flight == 0 && pending_out() == 0 && stream == nullptr &&
           slots.empty();
  }
};

}  // namespace

class Server::Impl {
 public:
  explicit Impl(ServerOptions options) : options_(std::move(options)) {}

  ~Impl() {
    RequestShutdown();
    Wait();
  }

  Status Start() {
    BAGALG_ASSIGN_OR_RETURN(
        listen_fd_,
        ListenOn(options_.host, options_.port, options_.backlog));
    BAGALG_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_.get()));
    BAGALG_RETURN_IF_ERROR(SetNonBlocking(listen_fd_.get()));
    listen_fd_raw_.store(listen_fd_.get(), std::memory_order_release);
    BAGALG_ASSIGN_OR_RETURN(epoll_, EpollLoop::Create());
    BAGALG_ASSIGN_OR_RETURN(wakeup_, WakeupFd::Create());
    BAGALG_RETURN_IF_ERROR(
        epoll_.Add(listen_fd_.get(), EPOLLIN, kListenerTag));
    BAGALG_RETURN_IF_ERROR(epoll_.Add(wakeup_.fd(), EPOLLIN, kWakeupTag));
    loop_iter_hist_ = obs::GlobalMetrics().GetHistogram(
        "server.epoll.loop_iter_us");
    const unsigned executors = std::max(1u, options_.executors);
    executors_.reserve(executors);
    for (unsigned i = 0; i < executors; ++i) {
      executors_.emplace_back([this] { ExecutorLoop(); });
    }
    loop_thread_ = std::thread([this] { EventLoop(); });
    return Status::Ok();
  }

  uint16_t port() const { return port_; }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  void RequestShutdown() {
    // Async-signal-safe: an atomic store, a shutdown(2), and an eventfd
    // write. The shutdown makes the listener readable (accept then fails),
    // the eventfd wakes the loop even if it was idle in epoll_wait.
    draining_.store(true, std::memory_order_release);
    const int fd = listen_fd_raw_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    wakeup_.Signal();
  }

  void Wait() {
    while (!draining()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::lock_guard<std::mutex> lock(teardown_mu_);
    if (torn_down_) return;
    Teardown();
    torn_down_ = true;
  }

  ServerStats stats() const {
    ServerStats s;
    s.requests = requests_.load();
    s.ok = ok_.load();
    s.refused = refused_.load();
    s.shed = shed_.load();
    s.tripped = tripped_.load();
    s.errors = errors_.load();
    s.io_errors = io_errors_.load();
    s.sessions_created = sessions_created_.load();
    s.sessions_closed = sessions_closed_.load();
    s.connections_accepted = connections_accepted_.load();
    s.keepalive_reuses = keepalive_reuses_.load();
    s.pipelined = pipelined_.load();
    s.bag1_requests = bag1_requests_.load();
    s.streamed_responses = streamed_responses_.load();
    s.connections_live = connections_live_.load();
    s.epoll_fds = epoll_fds_.load();
    s.draining = draining();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      s.sessions_live = sessions_.size();
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      s.queue_depth = queue_.size();
    }
    return s;
  }

 private:
  // --------------------------------------------------------- event loop

  void EventLoop() {
    std::vector<ReadyEvent> ready;
    bool accepting = true;
    while (!loop_stop_.load(std::memory_order_acquire)) {
      auto waited = epoll_.Wait(&ready, 500);
      if (!waited.ok()) break;  // epoll itself broken; drain will reap
      const auto iter_start = std::chrono::steady_clock::now();
      if (accepting && draining()) {
        // First drain observation: stop accepting. Existing connections
        // keep their event-driven lifecycle so in-flight responses (and
        // cancellation 499s) still reach their clients.
        (void)epoll_.Remove(listen_fd_.get());
        accepting = false;
      }
      for (const ReadyEvent& ev : ready) {
        if (ev.tag == kListenerTag) {
          if (accepting) HandleListener();
        } else if (ev.tag == kWakeupTag) {
          wakeup_.Drain();
          DrainCompletions();
        } else {
          HandleConnEvent(ev);
        }
      }
      ReapDoomed();
      RefreshLoopGauges(*waited);
      if (*waited > 0) {
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - iter_start);
        loop_iter_hist_->Observe(static_cast<uint64_t>(us.count()));
      }
    }
    // Loop exit: every remaining connection is torn down (drain already
    // gave pending writes their grace period in Teardown).
    for (auto& [id, conn] : conns_) {
      (void)epoll_.Remove(conn->fd.get());
    }
    conns_.clear();
    connections_live_.store(0);
    RefreshLoopGauges(0);
  }

  void RefreshLoopGauges(int ready_count) {
    epoll_fds_.store(epoll_.registered());
    ready_depth_.store(static_cast<uint64_t>(std::max(ready_count, 0)));
    // The state scan is O(connections); amortize it on the fast path. It
    // runs every iteration while draining because busy_conns_ is what
    // Teardown's grace period watches.
    if (!draining() && (++gauge_iter_ & 63) != 0) return;
    size_t reading = 0, executing = 0, writing = 0, busy = 0;
    for (const auto& [id, conn] : conns_) {
      if (conn->in_flight > 0) {
        ++executing;
        ++busy;
      } else if (!conn->idle()) {
        ++writing;
        ++busy;
      } else {
        ++reading;
      }
    }
    conns_reading_.store(reading);
    conns_executing_.store(executing);
    conns_writing_.store(writing);
    size_t pending;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      pending = completions_.size();
    }
    busy_conns_.store(busy + pending);
  }

  // ------------------------------------------------------------- accept

  void HandleListener() {
    for (int i = 0; i < kAcceptBatch; ++i) {
      bool would_block = false;
      auto conn = AcceptNonBlocking(listen_fd_.get(), &would_block);
      if (would_block) return;
      if (!conn.ok()) {
        if (draining() || conn.status().code() == StatusCode::kCancelled) {
          return;
        }
        // Transient refusal (injected or EMFILE-shaped): the pending
        // connection stays in the backlog; the next listener event retries.
        accept_retries_.fetch_add(1);
        return;
      }
      connections_accepted_.fetch_add(1);
      // Response-sized writes must not sit behind Nagle waiting for a
      // delayed ACK: pipelined clients would see 40ms stalls per reply.
      const int one = 1;
      (void)::setsockopt(conn->get(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
      if (conns_.size() >= options_.max_connections) {
        // Over the cap: answer with a typed 503 and close. Best-effort —
        // the socket is fresh, so the small write virtually never blocks,
        // and a peer that cannot take it was going to be closed anyway.
        HttpResponse resp = ErrorResponseBody(
            503, Status::Unavailable("connection limit reached"), "shed");
        resp.close = true;
        resp.extra_headers.emplace_back("Retry-After", "1");
        bool wb = false;
        (void)WriteNonBlocking(conn->get(), FormatHttpResponse(resp), &wb);
        shed_.fetch_add(1);
        continue;
      }
      auto c = std::make_unique<Conn>();
      c->id = next_conn_id_++;
      c->fd = std::move(*conn);
      c->reader = HttpReader(options_.http);
      c->interest = EPOLLIN | EPOLLRDHUP;
      if (!epoll_.Add(c->fd.get(), c->interest, c->id).ok()) continue;
      connections_live_.fetch_add(1);
      conns_.emplace(c->id, std::move(c));
    }
  }

  // -------------------------------------------------- connection events

  void HandleConnEvent(const ReadyEvent& ev) {
    auto it = conns_.find(ev.tag);
    if (it == conns_.end()) return;
    Conn* c = it->second.get();
    if (c->doomed) return;
    if (ev.events & EPOLLERR) {
      // The socket is dead; any in-flight response is undeliverable.
      Doom(c, /*io_error=*/!c->idle() || c->reader.mid_request());
      return;
    }
    if (ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) {
      ReadFromConn(c);
      if (c->doomed) return;
    }
    if (ev.events & EPOLLOUT) {
      DriveConn(c);
      if (c->doomed) return;
    }
    UpdateInterest(c);
  }

  void ReadFromConn(Conn* c) {
    if (c->read_closed) return;
    char chunk[16 * 1024];
    size_t total = 0;
    while (total < kReadBatchBytes) {
      bool would_block = false;
      auto n = ReadNonBlocking(c->fd.get(), chunk, sizeof(chunk),
                               &would_block);
      if (!n.ok()) {
        // Injected or real io fault mid-connection: typed io-error, torn.
        Doom(c, /*io_error=*/true);
        return;
      }
      if (would_block) break;
      if (*n == 0) {
        // Orderly EOF. Buffered complete requests still parse and their
        // responses still deliver (a client may send-then-half-close);
        // only once the parser runs dry does ParseOneRequest decide
        // between a clean close and a vanished-mid-request peer.
        c->read_closed = true;
        break;
      }
      total += *n;
      c->reader.Feed(std::string_view(chunk, *n));
    }
    DriveConn(c);
  }

  /// Advances the connection as far as it can go without blocking: flush
  /// whatever responses are ready (coalescing consecutive ones into one
  /// write), then parse further pipelined requests while earlier
  /// statements still execute. Iterative on purpose — a deep pipeline
  /// must not recurse.
  void DriveConn(Conn* c) {
    while (!c->doomed) {
      (void)FlushConn(c);
      if (c->doomed) return;
      if (c->close_pending || c->slots.size() >= kMaxPipelineDepth) return;
      if (!ParseOneRequest(c)) return;
    }
  }

  /// Parses and dispatches one request. Returns true when it made
  /// progress (caller should keep driving), false when more bytes are
  /// needed or the connection is done.
  bool ParseOneRequest(Conn* c) {
    HttpRequest request;
    auto got = c->reader.Next(&request);
    if (!got.ok()) {
      errors_.fetch_add(1);
      const bool header_cap =
          got.status().message().find("header") != std::string::npos;
      const int status =
          got.status().code() == StatusCode::kParseError
              ? 400
              : (header_cap ? 431 : 413);
      HttpResponse resp = ErrorResponseBody(status, got.status(), "error");
      resp.close = true;
      QueueResponse(c, resp, /*close=*/true);
      return true;
    }
    if (!*got) {
      if (c->read_closed && !c->eof_handled) {
        c->eof_handled = true;
        if (c->reader.mid_request() || c->reader.buffered_bytes() > 0) {
          // The peer vanished mid-request: torn, typed as an io error.
          io_errors_.fetch_add(1);
        }
        if (c->idle()) {
          Doom(c, /*io_error=*/false);
        } else {
          // Responses are still owed (executing or unwritten); deliver
          // them, then close — send-then-half-close clients get answers.
          c->finish_after_flush = true;
        }
      }
      return false;
    }
    requests_.fetch_add(1);
    c->requests_served++;
    if (c->requests_served > 1) keepalive_reuses_.fetch_add(1);
    if (c->reader.buffered_bytes() > 0) pipelined_.fetch_add(1);
    HandleRequest(c, request);
    return true;
  }

  // ----------------------------------------------------------- routing

  void HandleRequest(Conn* c, const HttpRequest& request) {
    const bool want_close = RequestWantsClose(request);
    if (request.method == "POST" && request.path == "/v1/statement") {
      StatementRequest(c, request, want_close);
      return;
    }
    if (request.method == "POST" && request.path == "/v1/session/close") {
      CloseSessionRequest(c, request, want_close);
      return;
    }
    HttpResponse resp;
    if (request.method == "GET" && request.path == "/healthz") {
      resp = Healthz();
    } else if (request.method == "GET" && request.path == "/metrics") {
      resp = Metrics();
    } else if (request.method == "GET" && request.path == "/trace") {
      resp = Trace();
    } else if (request.path == "/healthz" || request.path == "/metrics" ||
               request.path == "/trace" || request.path == "/v1/statement" ||
               request.path == "/v1/session/close") {
      errors_.fetch_add(1);
      resp = ErrorResponseBody(
          405,
          Status::InvalidArgument("method not allowed on " + request.path),
          "error");
    } else {
      errors_.fetch_add(1);
      resp = ErrorResponseBody(
          404, Status::NotFound("no such endpoint: " + request.path),
          "error");
    }
    QueueResponse(c, resp, want_close);
  }

  HttpResponse Healthz() {
    const ServerStats s = stats();
    std::string body = "{\"status\":";
    body += s.draining ? "\"draining\"" : "\"serving\"";
    body += ",\"build\":" + BuildInfoJson();
    body += ",\"engine_default\":" +
            obs::JsonQuote(exec::EngineName(exec::EngineFromEnv()));
    body += ",\"sessions\":" + std::to_string(s.sessions_live);
    body += ",\"connections\":" + std::to_string(s.connections_live);
    body += ",\"queue_depth\":" + std::to_string(s.queue_depth);
    body += ",\"requests\":" + std::to_string(s.requests);
    body += ",\"epoll_fds\":" + std::to_string(s.epoll_fds);
    body += "}";
    HttpResponse resp;
    resp.body = std::move(body);
    return resp;
  }

  HttpResponse Metrics() {
    obs::MirrorGovernorStats();
    MirrorServerStats();
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = obs::GlobalMetrics().Snapshot().ToPrometheusText();
    return resp;
  }

  HttpResponse Trace() {
    std::vector<std::shared_ptr<Session>> sessions;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions.reserve(sessions_.size());
      for (const auto& [name, session] : sessions_) {
        sessions.push_back(session);
      }
    }
    std::string body = "{\"sessions\":[";
    bool first_session = true;
    for (const auto& session : sessions) {
      if (!first_session) body += ",";
      first_session = false;
      body += "{\"id\":" + obs::JsonQuote(session->id) + ",\"entries\":[";
      // try_lock: a session mid-statement would otherwise park the whole
      // event loop on its mutex for the statement's duration. Busy
      // sessions report an empty tail rather than stall every peer.
      std::unique_lock<std::mutex> lock(session->mu, std::try_to_lock);
      if (lock.owns_lock()) {
        bool first_entry = true;
        for (const auto& entry : session->runner.journal().Tail(8)) {
          if (!first_entry) body += ",";
          first_entry = false;
          body += entry.ToJsonLine();
        }
      }
      body += "]}";
    }
    body += "]}";
    HttpResponse resp;
    resp.body = std::move(body);
    return resp;
  }

  // --------------------------------------------------------- statements

  void StatementRequest(Conn* c, const HttpRequest& request,
                        bool want_close) {
    const bool bag1 = IsBag1Request(request);
    std::string session_name;
    std::string statement;
    uint64_t timeout_ms = 0;
    uint64_t memlimit_bytes = 0;

    if (bag1) {
      bag1_requests_.fetch_add(1);
      size_t consumed = 0;
      auto frame = DecodeFrame(request.body, &consumed);
      Status bad = Status::Ok();
      WireStatementRequest decoded;
      if (!frame.ok()) {
        bad = frame.status().code() == StatusCode::kUnavailable
                  ? Status::ParseError("wire: truncated BAG1 frame")
                  : frame.status();
      } else if (frame->format != WireFormat::kBinary) {
        bad = Status::ParseError("wire: BAG1 statement frames use the "
                                 "binary format tag");
      } else {
        auto req = DecodeStatementRequest(frame->payload);
        if (!req.ok()) {
          bad = req.status();
        } else {
          decoded = std::move(*req);
        }
      }
      if (!bad.ok()) {
        errors_.fetch_add(1);
        QueueEnvelope(c, ErrorEnvelope(400, bad, "error"), bag1, want_close);
        return;
      }
      session_name = decoded.session.empty() ? "default" : decoded.session;
      statement = std::move(decoded.statement);
      timeout_ms = decoded.timeout_ms;
      memlimit_bytes = decoded.memlimit_bytes;
    } else {
      auto doc = ParseJson(request.body);
      if (!doc.ok() || !doc->is_object()) {
        errors_.fetch_add(1);
        QueueEnvelope(
            c,
            ErrorEnvelope(400,
                          doc.ok() ? Status::InvalidArgument(
                                         "request body must be a JSON object")
                                   : doc.status(),
                          "error"),
            bag1, want_close);
        return;
      }
      session_name = doc->GetString("session", "default");
      const JsonValue* stmt = doc->Find("statement");
      if (stmt == nullptr || !stmt->is_string() || stmt->string.empty()) {
        errors_.fetch_add(1);
        QueueEnvelope(
            c,
            ErrorEnvelope(400,
                          Status::InvalidArgument(
                              "missing \"statement\" string"),
                          "error"),
            bag1, want_close);
        return;
      }
      statement = stmt->string;
      timeout_ms = doc->GetUint("timeout_ms", 0);
      memlimit_bytes = doc->GetUint("memlimit_bytes", 0);
    }

    if (!ValidSessionName(session_name)) {
      errors_.fetch_add(1);
      QueueEnvelope(c,
                    ErrorEnvelope(400,
                                  Status::InvalidArgument(
                                      "session names are [A-Za-z0-9_-]{1,64}"),
                                  "error"),
                    bag1, want_close);
      return;
    }
    if (draining()) {
      QueueEnvelope(c, ShedEnvelope(503, "draining for shutdown"), bag1,
                    want_close);
      return;
    }
    auto session = GetOrCreateSession(session_name);
    if (!session.ok()) {
      QueueEnvelope(c, ShedEnvelope(503, session.status().message()), bag1,
                    want_close);
      return;
    }

    ExecJob job;
    job.kind = ExecJob::Kind::kStatement;
    job.conn_id = c->id;
    job.session = *session;
    job.session_name = session_name;
    job.statement = std::move(statement);
    job.timeout_ms = EffectiveLimit(timeout_ms, options_.default_timeout_ms);
    job.memlimit_bytes =
        EffectiveLimit(memlimit_bytes, options_.default_memlimit_bytes);
    job.bag1 = bag1;
    job.want_close = want_close;

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (draining()) {
        QueueEnvelope(c, ShedEnvelope(503, "draining for shutdown"), bag1,
                      want_close);
        return;
      }
      if (queue_.size() >= options_.queue_capacity) {
        const size_t depth = queue_.size();
        const unsigned lanes = std::max(1u, options_.executors);
        Envelope shed = ShedEnvelope(429, "admission queue full");
        shed.retry_after = std::to_string(1 + depth / lanes);
        QueueEnvelope(c, shed, bag1, want_close);
        return;
      }
      // Slot seq and session ticket are both issued here, under the queue
      // mutex that orders the push: queue order == ticket order, which is
      // what makes the executor turnstile deadlock-free.
      job.seq = NewAsyncSlot(c, want_close);
      job.ticket = job.session->next_ticket++;
      queue_.push_back(std::move(job));
    }
    queue_cv_.notify_one();
  }

  void CloseSessionRequest(Conn* c, const HttpRequest& request,
                           bool want_close) {
    auto doc = ParseJson(request.body);
    if (!doc.ok() || !doc->is_object()) {
      errors_.fetch_add(1);
      QueueResponse(
          c,
          ErrorResponseBody(400,
                            doc.ok() ? Status::InvalidArgument(
                                           "request body must be a JSON "
                                           "object")
                                     : doc.status(),
                            "error"),
          want_close);
      return;
    }
    const std::string session_name = doc->GetString("session", "");
    std::shared_ptr<Session> session;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      auto it = sessions_.find(session_name);
      if (it != sessions_.end()) {
        session = it->second;
        sessions_.erase(it);  // slot frees immediately; flush runs async
      }
    }
    if (session == nullptr) {
      errors_.fetch_add(1);
      QueueResponse(
          c,
          ErrorResponseBody(
              404, Status::NotFound("no such session: " + session_name),
              "error"),
          want_close);
      return;
    }
    // The flush can block on the session mutex behind an in-flight
    // statement, so it runs on the executor pool, never the loop thread.
    ExecJob job;
    job.kind = ExecJob::Kind::kCloseSession;
    job.conn_id = c->id;
    job.session = std::move(session);
    job.session_name = session_name;
    job.want_close = want_close;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      // Session closes are admitted even at capacity: the close is what
      // relieves pressure, shedding it would wedge a full server.
      job.seq = NewAsyncSlot(c, want_close);
      job.ticket = job.session->next_ticket++;
      queue_.push_back(std::move(job));
    }
    queue_cv_.notify_one();
  }

  // ---------------------------------------------------------- sessions

  Result<std::shared_ptr<Session>> GetOrCreateSession(
      const std::string& name) {
    std::shared_ptr<Session> created;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      auto it = sessions_.find(name);
      if (it != sessions_.end()) return it->second;
      if (sessions_.size() >= options_.max_sessions) {
        return Status::Unavailable("session limit reached (" +
                                   std::to_string(options_.max_sessions) +
                                   ")");
      }
      created = std::make_shared<Session>(name);
      sessions_.emplace(name, created);
    }
    sessions_created_.fetch_add(1);
    {
      // No contention possible yet, but the runner's invariants are "hold
      // mu"; configure the session defaults under it.
      std::lock_guard<std::mutex> lock(created->mu);
      created->runner.set_timeout_ms(options_.default_timeout_ms);
      created->runner.set_memlimit_bytes(options_.default_memlimit_bytes);
      if (options_.cost_budget > 0) {
        analysis::CostBudget budget;
        budget.max_estimated_size = BigNat(options_.cost_budget);
        created->runner.set_budget(budget);
      }
    }
    return created;
  }

  void FlushSessionJournal(Session& session) {
    if (options_.journal_dir.empty()) return;
    std::lock_guard<std::mutex> lock(session.mu);
    // ValidSessionName guarantees the id is path-metacharacter-free.
    (void)session.runner.journal().ExportJsonl(
        options_.journal_dir + "/session-" + session.id + ".jsonl");
  }

  // --------------------------------------------------------- executors

  void ExecutorLoop() {
    while (true) {
      ExecJob job;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [this] {
          return stop_executors_ || !queue_.empty();
        });
        if (queue_.empty()) {
          if (stop_executors_) return;
          continue;
        }
        job = std::move(queue_.front());
        queue_.pop_front();
        if (draining() && job.kind == ExecJob::Kind::kStatement) {
          // Queued-but-not-started work is shed, not run: drain latency
          // must not depend on queue depth. The turnstile still advances
          // — later tickets of the session must not wait forever on a
          // statement that never ran.
          lock.unlock();
          WaitTurn(*job.session, job.ticket);
          AdvanceTurn(*job.session);
          StatementResult shed;
          shed.status = Status::Unavailable("draining for shutdown");
          shed.outcome = "draining";
          PublishCompletion(std::move(job), std::move(shed));
          continue;
        }
        active_executions_.fetch_add(1);
      }
      StatementResult result = job.kind == ExecJob::Kind::kCloseSession
                                   ? ExecuteClose(job)
                                   : Execute(job);
      PublishCompletion(std::move(job), std::move(result));
      active_executions_.fetch_sub(1);
      idle_cv_.notify_all();
    }
  }

  /// Blocks the lane until the session serves this ticket. Safe: tickets
  /// are issued in queue order and lanes pop FIFO, so the lane holding
  /// the now-serving ticket is always running (or about to).
  static void WaitTurn(Session& session, uint64_t ticket) {
    std::unique_lock<std::mutex> lock(session.turn_mu);
    session.turn_cv.wait(lock,
                         [&] { return session.now_serving == ticket; });
  }

  static void AdvanceTurn(Session& session) {
    {
      std::lock_guard<std::mutex> lock(session.turn_mu);
      ++session.now_serving;
    }
    session.turn_cv.notify_all();
  }

  void PublishCompletion(ExecJob job, StatementResult result) {
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(
          Completion{std::move(job), std::move(result)});
    }
    wakeup_.Signal();
  }

  StatementResult Execute(ExecJob& job) {
    Session& session = *job.session;
    WaitTurn(session, job.ticket);
    StatementResult result;
    {
      std::lock_guard<std::mutex> lock(session.mu);
      session.runner.set_timeout_ms(job.timeout_ms);
      session.runner.set_memlimit_bytes(job.memlimit_bytes);
      const uint64_t journal_before = session.runner.journal().total();
      const auto start = std::chrono::steady_clock::now();
      Result<std::string> output = session.runner.RunLine(job.statement);
      const auto wall = std::chrono::steady_clock::now() - start;

      result.wall_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(wall)
              .count());
      result.flight = session.runner.TakeFlightDump();
      if (output.ok()) {
        result.output = *output;
        if (session.runner.last_result().has_value()) {
          result.result = *session.runner.last_result();
        }
      } else {
        result.status = output.status();
      }
      if (session.runner.journal().total() > journal_before) {
        const auto tail = session.runner.journal().Tail(1);
        if (!tail.empty()) result.outcome = tail.back().outcome;
      }
      if (result.outcome.empty()) {
        result.outcome = OutcomeForStatus(result.status);
      }
    }
    AdvanceTurn(session);
    obs::MirrorGovernorStats();
    return result;
  }

  StatementResult ExecuteClose(ExecJob& job) {
    WaitTurn(*job.session, job.ticket);
    FlushSessionJournal(*job.session);
    AdvanceTurn(*job.session);
    sessions_closed_.fetch_add(1);
    StatementResult result;
    result.outcome = "ok";
    return result;
  }

  // -------------------------------------------------------- completions

  void DrainCompletions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      batch.swap(completions_);
    }
    for (Completion& completion : batch) {
      auto it = conns_.find(completion.job.conn_id);
      if (it == conns_.end() || it->second->doomed) {
        // The connection died while the statement ran: the typed outcome
        // still counts, the bytes have nowhere to go.
        CountBucket(BucketFor(completion.result.outcome));
        continue;
      }
      Conn* c = it->second.get();
      const uint64_t idx = completion.job.seq - c->base_seq;
      if (idx >= c->slots.size()) {
        // Unreachable by construction (an unready slot blocks promotion);
        // defensive against miscounted sequences.
        CountBucket(BucketFor(completion.result.outcome));
        continue;
      }
      ResponseSlot& slot = c->slots[static_cast<size_t>(idx)];
      if (completion.job.kind == ExecJob::Kind::kCloseSession) {
        RenderCloseCompletion(&slot, completion);
      } else {
        RenderStatementCompletion(&slot, completion);
      }
      slot.ready = true;
      --c->in_flight;
      DriveConn(c);
      if (!c->doomed) UpdateInterest(c);
    }
  }

  void CountBucket(Bucket bucket) {
    switch (bucket) {
      case Bucket::kOk: ok_.fetch_add(1); break;
      case Bucket::kRefused: refused_.fetch_add(1); break;
      case Bucket::kShed: shed_.fetch_add(1); break;
      case Bucket::kTripped: tripped_.fetch_add(1); break;
      case Bucket::kError: errors_.fetch_add(1); break;
    }
  }

  void RenderCloseCompletion(ResponseSlot* slot, Completion& completion) {
    ok_.fetch_add(1);
    HttpResponse resp;
    resp.body = "{\"ok\":true,\"outcome\":\"ok\",\"closed\":" +
                obs::JsonQuote(completion.job.session_name) + "}";
    resp.close = completion.job.want_close;
    slot->close_after = resp.close;
    slot->bytes = FormatHttpResponse(resp);
  }

  void RenderStatementCompletion(ResponseSlot* slot,
                                 Completion& completion) {
    StatementResult& result = completion.result;
    CountBucket(BucketFor(result.outcome));
    obs::GlobalMetrics()
        .GetHistogram("server.request.wall_us")
        ->Observe(result.wall_us);

    if (result.status.ok()) {
      Envelope env;
      env.http_status = 200;
      env.ok = true;
      env.outcome = "ok";
      env.session = completion.job.session_name;
      env.output = std::move(result.output);
      env.wall_us = result.wall_us;
      if (result.result.has_value()) {
        env.has_result = true;
        env.result = std::move(*result.result);
      }
      RenderEnvelope(slot, env, completion.job.bag1,
                     completion.job.want_close);
      return;
    }
    const int http_status =
        result.outcome == "draining" ? 503
                                     : HttpStatusForCode(result.status.code());
    Envelope env = ErrorEnvelope(http_status, result.status, result.outcome,
                                 result.flight);
    env.wall_us = result.wall_us;
    if (IsRetryable(result.status.code())) env.retry_after = "1";
    RenderEnvelope(slot, env, completion.job.bag1,
                   completion.job.want_close);
  }

  // -------------------------------------------------- response rendering

  /// The wire-format-independent shape of a statement response; rendered
  /// as a JSON envelope, a chunked streamed JSON envelope, or a BAG1
  /// binary frame depending on size and the request's wire path.
  struct Envelope {
    int http_status = 200;
    bool ok = true;
    std::string outcome = "ok";
    std::string session;  // success JSON envelopes include it
    std::string output;
    bool has_result = false;
    Value result;
    uint64_t wall_us = 0;
    Status error = Status::Ok();
    std::string flight;
    std::string retry_after;  // nonempty → Retry-After header
  };

  Envelope ErrorEnvelope(int http_status, const Status& status,
                         std::string_view outcome,
                         std::string_view flight = "") {
    Envelope env;
    env.http_status = http_status;
    env.ok = false;
    env.outcome = std::string(outcome);
    env.error = status;
    env.flight = std::string(flight);
    return env;
  }

  Envelope ShedEnvelope(int http_status, std::string_view why) {
    shed_.fetch_add(1);
    Envelope env = ErrorEnvelope(http_status,
                                 Status::Unavailable(std::string(why)),
                                 "shed");
    env.retry_after = "1";
    return env;
  }

  std::string JsonEnvelopeBody(const Envelope& env) {
    if (env.ok) {
      std::string body = "{\"ok\":true,\"outcome\":\"ok\",\"session\":" +
                         obs::JsonQuote(env.session);
      body += ",\"output\":" + obs::JsonQuote(env.output);
      if (env.has_result) {
        body += ",\"result\":" + ValueToWireJson(env.result);
      }
      body += ",\"wall_us\":" + std::to_string(env.wall_us) + "}";
      return body;
    }
    std::string body = "{\"ok\":false,\"outcome\":";
    body += obs::JsonQuote(env.outcome);
    body += ",\"error\":{\"code\":";
    body += obs::JsonQuote(StatusCodeName(env.error.code()));
    body += ",\"message\":";
    body += obs::JsonQuote(env.error.message());
    body += ",\"retryable\":";
    body += IsRetryable(env.error.code()) ? "true" : "false";
    body += "}";
    if (!env.flight.empty()) {
      body += ",\"flight\":" + obs::JsonQuote(env.flight);
    }
    body += "}";
    return body;
  }

  /// Plain JSON error response for non-statement endpoints (keeps the
  /// exact envelope the handler-thread server emitted).
  HttpResponse ErrorResponseBody(int http_status, const Status& status,
                                 std::string_view outcome,
                                 std::string_view flight = "") {
    Envelope env = ErrorEnvelope(http_status, status, outcome, flight);
    HttpResponse resp;
    resp.status = http_status;
    resp.body = JsonEnvelopeBody(env);
    return resp;
  }

  bool ShouldStream(const Envelope& env) const {
    return env.ok && env.has_result && env.result.IsBag() &&
           options_.stream_entries_threshold > 0 &&
           env.result.bag().entries().size() >=
               options_.stream_entries_threshold;
  }

  /// Renders an envelope into a response slot: a BAG1 binary frame, a
  /// chunked streamed JSON envelope, or a materialized JSON body.
  void RenderEnvelope(ResponseSlot* slot, const Envelope& env, bool bag1,
                      bool want_close) {
    HttpResponse resp;
    resp.status = env.http_status;
    if (!env.retry_after.empty()) {
      resp.extra_headers.emplace_back("Retry-After", env.retry_after);
    }
    if (bag1) {
      WireStatementResponse wire;
      wire.ok = env.ok;
      wire.outcome = env.outcome;
      wire.output = env.output;
      wire.wall_us = env.wall_us;
      wire.has_result = env.has_result;
      if (env.has_result) wire.result = env.result;
      if (!env.ok) {
        wire.error_code = StatusCodeName(env.error.code());
        wire.error_message = env.error.message();
        wire.retryable = IsRetryable(env.error.code());
      }
      wire.flight = env.flight;
      resp.content_type = kBag1ContentType;
      resp.body = EncodeFrame(WireFormat::kBinary,
                              EncodeStatementResponse(wire));
      resp.close = want_close;
      slot->close_after = resp.close;
      slot->bytes = FormatHttpResponse(resp);
      return;
    }
    if (ShouldStream(env)) {
      streamed_responses_.fetch_add(1);
      std::string prefix = "{\"ok\":true,\"outcome\":\"ok\",\"session\":" +
                           obs::JsonQuote(env.session);
      prefix += ",\"output\":" + obs::JsonQuote(env.output);
      prefix += ",\"result\":";
      std::string suffix =
          ",\"wall_us\":" + std::to_string(env.wall_us) + "}";
      resp.close = want_close;
      slot->close_after = resp.close;
      slot->bytes = FormatHttpResponseHead(resp, /*chunked=*/true, 0);
      slot->stream = std::make_unique<WireJsonStreamer>(
          std::move(prefix), env.result, std::move(suffix));
      return;
    }
    resp.body = JsonEnvelopeBody(env);
    resp.close = want_close;
    slot->close_after = resp.close;
    slot->bytes = FormatHttpResponse(resp);
  }

  /// Queues a ready (synchronous) envelope response in request order.
  void QueueEnvelope(Conn* c, const Envelope& env, bool bag1,
                     bool want_close) {
    c->slots.emplace_back();
    ResponseSlot* slot = &c->slots.back();
    RenderEnvelope(slot, env, bag1, want_close);
    slot->ready = true;
    if (slot->close_after) c->close_pending = true;
  }

  /// Queues a ready (synchronous) plain response in request order.
  /// Deliberately does NOT drive the connection: callers inside DriveConn
  /// would recurse (one stack frame per pipelined request); the enclosing
  /// DriveConn loop — or the explicit DriveConn in DrainCompletions —
  /// picks it up iteratively.
  void QueueResponse(Conn* c, HttpResponse resp, bool close) {
    resp.close = resp.close || close;
    c->slots.emplace_back();
    ResponseSlot* slot = &c->slots.back();
    slot->ready = true;
    slot->close_after = resp.close;
    slot->bytes = FormatHttpResponse(resp);
    if (resp.close) c->close_pending = true;
  }

  /// Reserves the next in-order response slot for a statement headed to
  /// the executor pool. The completion fills it by sequence number.
  uint64_t NewAsyncSlot(Conn* c, bool want_close) {
    const uint64_t seq = c->next_seq();
    c->slots.emplace_back();
    ++c->in_flight;
    if (want_close) c->close_pending = true;
    return seq;
  }

  /// Moves ready responses, in order, from the slot queue into the write
  /// buffer — consecutive ready slots coalesce into one write. Stops at
  /// the first unready slot, when a streamed response takes over the
  /// buffer, or after promoting a close-marked response (nothing after
  /// it can be sent).
  void PromoteSlots(Conn* c) {
    while (c->stream == nullptr && !c->slots.empty() &&
           c->slots.front().ready && !c->close_after_write) {
      ResponseSlot& slot = c->slots.front();
      c->out += slot.bytes;
      c->close_after_write |= slot.close_after;
      if (slot.stream != nullptr) c->stream = std::move(slot.stream);
      c->slots.pop_front();
      ++c->base_seq;
    }
  }

  /// Promotes ready responses and writes as much as the socket takes.
  /// Returns true when everything promotable is out (the connection may
  /// be idle or waiting on an executor), false when write-blocked or the
  /// connection closed.
  bool FlushConn(Conn* c) {
    while (true) {
      PromoteSlots(c);
      if (c->stream != nullptr && c->pending_out() < kWriteLowWater) {
        std::string slice;
        const bool more = c->stream->Produce(kStreamSliceBytes, &slice);
        AppendHttpChunk(slice, &c->out);
        if (!more) {
          AppendHttpLastChunk(&c->out);
          c->stream.reset();
        }
      }
      if (c->pending_out() == 0 && c->stream == nullptr) break;
      bool would_block = false;
      auto n = WriteNonBlocking(
          c->fd.get(),
          std::string_view(c->out).substr(c->out_off), &would_block);
      if (!n.ok()) {
        Doom(c, /*io_error=*/true);
        return false;
      }
      if (would_block) return false;
      c->out_off += *n;
      // Keep the consumed prefix from growing without bound on long
      // streamed responses.
      if (c->out_off > 512 * 1024 && c->out_off >= c->out.size() / 2) {
        c->out.erase(0, c->out_off);
        c->out_off = 0;
      }
    }
    c->out.clear();
    c->out_off = 0;
    if (c->close_after_write ||
        (c->finish_after_flush && c->slots.empty())) {
      Doom(c, /*io_error=*/false);
      return false;
    }
    return true;
  }

  // -------------------------------------------------- interest & close

  void UpdateInterest(Conn* c) {
    if (c->doomed) return;
    uint32_t want = EPOLLRDHUP;
    // Reads stay armed while statements execute (pipelined bytes drain
    // into the parser buffer), pausing once the buffer holds a full
    // window of unparsed requests — bounded memory per connection — or
    // once a close-marked response makes further requests unanswerable.
    const size_t pause_at =
        2 * (options_.http.max_header_bytes + options_.http.max_body_bytes);
    if (!c->read_closed && !c->close_pending &&
        c->reader.buffered_bytes() < pause_at) {
      want |= EPOLLIN;
    }
    if (c->pending_out() > 0 || c->stream != nullptr) want |= EPOLLOUT;
    if (want != c->interest) {
      if (epoll_.Modify(c->fd.get(), want, c->id).ok()) {
        c->interest = want;
      }
    }
  }

  /// Marks a connection for teardown at the end of the loop iteration.
  /// Deferred so no event-handling frame is left holding a dangling Conn*.
  void Doom(Conn* c, bool io_error) {
    if (c->doomed) return;
    c->doomed = true;
    if (io_error) io_errors_.fetch_add(1);
    (void)epoll_.Remove(c->fd.get());
    doomed_.push_back(c->id);
  }

  void ReapDoomed() {
    for (const uint64_t id : doomed_) {
      if (conns_.erase(id) > 0) connections_live_.fetch_sub(1);
    }
    doomed_.clear();
  }

  // ------------------------------------------------------------- drain

  void Teardown() {
    // Phase 1 — run the executor pool dry. Wake the executors so they
    // shed everything still queued, then keep cancelling in-flight
    // statements until the pool idles. The repeat matters: RunLine re-arms
    // the session token at statement start, so a single Cancel can race a
    // statement that slipped past the drain check; a periodic sweep
    // always lands.
    queue_cv_.notify_all();
    while (true) {
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        if (queue_.empty() && active_executions_.load() == 0) break;
      }
      CancelAllSessions();
      std::unique_lock<std::mutex> lock(queue_mu_);
      idle_cv_.wait_for(lock, std::chrono::milliseconds(20), [this] {
        return queue_.empty() && active_executions_.load() == 0;
      });
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stop_executors_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& t : executors_) t.join();
    executors_.clear();

    // Phase 2 — let the loop deliver what the executors produced: every
    // completion rendered and every in-flight response written (a
    // cancelled statement's 499 must reach its client). Bounded: a peer
    // that stopped reading forfeits its bytes after the grace period.
    wakeup_.Signal();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (std::chrono::steady_clock::now() < deadline &&
           busy_conns_.load() > 0) {
      wakeup_.Signal();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // Phase 3 — stop the loop and tear down the remaining connections.
    loop_stop_.store(true, std::memory_order_release);
    wakeup_.Signal();
    if (loop_thread_.joinable()) loop_thread_.join();

    // Phase 4 — flush journals and publish the final metrics mirror.
    std::vector<std::shared_ptr<Session>> sessions;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (const auto& [name, session] : sessions_) {
        sessions.push_back(session);
      }
      sessions_.clear();
    }
    for (const auto& session : sessions) {
      FlushSessionJournal(*session);
      sessions_closed_.fetch_add(1);
    }
    obs::MirrorGovernorStats();
    MirrorServerStats();
    listen_fd_.Reset();
    listen_fd_raw_.store(-1, std::memory_order_release);
  }

  void CancelAllSessions() {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& [name, session] : sessions_) {
      session->cancel.Cancel();
    }
  }

  // ------------------------------------------------------------ shared

  void MirrorServerStats() {
    auto& metrics = obs::GlobalMetrics();
    const ServerStats s = stats();
    metrics.GetCounter("server.requests")->RaiseTo(s.requests);
    metrics.GetCounter("server.outcome.ok")->RaiseTo(s.ok);
    metrics.GetCounter("server.outcome.refused")->RaiseTo(s.refused);
    metrics.GetCounter("server.outcome.shed")->RaiseTo(s.shed);
    metrics.GetCounter("server.outcome.tripped")->RaiseTo(s.tripped);
    metrics.GetCounter("server.outcome.error")->RaiseTo(s.errors);
    metrics.GetCounter("server.io.errors")->RaiseTo(s.io_errors);
    metrics.GetCounter("server.accept.retries")
        ->RaiseTo(accept_retries_.load());
    metrics.GetCounter("server.sessions.created")
        ->RaiseTo(s.sessions_created);
    metrics.GetCounter("server.sessions.closed")->RaiseTo(s.sessions_closed);
    metrics.GetCounter("server.connections.accepted")
        ->RaiseTo(s.connections_accepted);
    metrics.GetCounter("server.http.keepalive.reuses")
        ->RaiseTo(s.keepalive_reuses);
    metrics.GetCounter("server.http.pipelined")->RaiseTo(s.pipelined);
    metrics.GetCounter("server.wire.bag1.requests")
        ->RaiseTo(s.bag1_requests);
    metrics.GetCounter("server.http.streamed")
        ->RaiseTo(s.streamed_responses);
    metrics.GetGauge("server.sessions.live")
        ->Set(static_cast<int64_t>(s.sessions_live));
    metrics.GetGauge("server.connections.live")
        ->Set(static_cast<int64_t>(s.connections_live));
    metrics.GetGauge("server.queue.depth")
        ->Set(static_cast<int64_t>(s.queue_depth));
    metrics.GetGauge("server.epoll.fds")
        ->Set(static_cast<int64_t>(s.epoll_fds));
    metrics.GetGauge("server.epoll.ready.depth")
        ->Set(static_cast<int64_t>(ready_depth_.load()));
    metrics.GetGauge("server.conn.state.reading")
        ->Set(static_cast<int64_t>(conns_reading_.load()));
    metrics.GetGauge("server.conn.state.executing")
        ->Set(static_cast<int64_t>(conns_executing_.load()));
    metrics.GetGauge("server.conn.state.writing")
        ->Set(static_cast<int64_t>(conns_writing_.load()));
  }

  const ServerOptions options_;
  Fd listen_fd_;
  std::atomic<int> listen_fd_raw_{-1};
  uint16_t port_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> loop_stop_{false};
  std::mutex teardown_mu_;
  bool torn_down_ = false;  // guarded by teardown_mu_

  // Loop-thread-only state (no locks: single owner).
  EpollLoop epoll_;
  WakeupFd wakeup_;
  std::thread loop_thread_;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<uint64_t> doomed_;
  uint64_t next_conn_id_ = kFirstConnId;
  uint64_t gauge_iter_ = 0;
  obs::Histogram* loop_iter_hist_ = nullptr;

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<ExecJob> queue_;      // guarded by queue_mu_
  bool stop_executors_ = false;    // guarded by queue_mu_
  std::atomic<uint64_t> active_executions_{0};
  std::vector<std::thread> executors_;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;  // guarded by completions_mu_

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> tripped_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> io_errors_{0};
  std::atomic<uint64_t> accept_retries_{0};
  std::atomic<uint64_t> sessions_created_{0};
  std::atomic<uint64_t> sessions_closed_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> keepalive_reuses_{0};
  std::atomic<uint64_t> pipelined_{0};
  std::atomic<uint64_t> bag1_requests_{0};
  std::atomic<uint64_t> streamed_responses_{0};
  std::atomic<size_t> connections_live_{0};
  std::atomic<size_t> epoll_fds_{0};
  std::atomic<uint64_t> ready_depth_{0};
  std::atomic<size_t> conns_reading_{0};
  std::atomic<size_t> conns_executing_{0};
  std::atomic<size_t> conns_writing_{0};
  std::atomic<size_t> busy_conns_{0};
};

Server::Server() = default;
Server::~Server() = default;

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  auto server = std::unique_ptr<Server>(new Server());
  server->impl_ = std::make_unique<Impl>(std::move(options));
  BAGALG_RETURN_IF_ERROR(server->impl_->Start());
  return server;
}

uint16_t Server::port() const { return impl_->port(); }
void Server::RequestShutdown() { impl_->RequestShutdown(); }
void Server::Wait() { impl_->Wait(); }
bool Server::draining() const { return impl_->draining(); }
ServerStats Server::stats() const { return impl_->stats(); }

}  // namespace bagalg::net
