#ifndef BAGALG_NET_HTTP_H_
#define BAGALG_NET_HTTP_H_

/// \file http.h
/// A deliberately small HTTP/1.1 server-side implementation: exactly what
/// bagalgd needs — request parsing with hard caps, keep-alive, and response
/// emission — and nothing it does not (no chunked bodies, no TLS, no
/// multipart). Every limit violation and malformation is a typed Status so
/// the connection loop can answer 400/413 instead of guessing.
///
/// Also home of the StatusCode → HTTP status mapping, the outward face of
/// the retryability contract in src/util/status.h: retryable codes map to
/// statuses clients treat as transient (429/499/503/504), permanent codes
/// to 4xx/5xx they must not blindly retry.

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/result.h"

namespace bagalg::net {

struct HttpLimits {
  /// Cap on the request line + headers block. Exceeding it is a 431-shaped
  /// kResourceExhausted.
  size_t max_header_bytes = 16 * 1024;
  /// Cap on Content-Length. Exceeding it is a 413-shaped
  /// kResourceExhausted; a statement this large is an attack, not a query.
  size_t max_body_bytes = 1024 * 1024;
  /// Poll granularity while waiting for request bytes; bounds how long a
  /// drain waits on an idle keep-alive connection.
  int read_poll_ms = 100;
};

struct HttpRequest {
  std::string method;  // uppercase as sent: GET, POST, ...
  std::string path;    // target up to '?'
  std::string query;   // after '?', possibly empty
  /// Header names lowercased; last occurrence wins.
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Reads one request from `fd`. `buffer` carries bytes left over from the
/// previous request on this connection (keep-alive pipelining) and must
/// persist across calls. `should_stop` is polled while waiting for bytes;
/// when it turns true between requests the read aborts with
/// kCancelled("draining").
///
/// Error map: kCancelled = orderly close or drain (close quietly);
/// kUnavailable = the peer vanished mid-request or injected io fault;
/// kParseError = malformed request (answer 400); kResourceExhausted =
/// header/body cap exceeded (answer 431/413).
Result<HttpRequest> ReadHttpRequest(int fd, std::string* buffer,
                                    const HttpLimits& limits,
                                    const std::function<bool()>& should_stop);

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
  /// Sends "Connection: close" and ends the connection after this response.
  bool close = false;
};

/// Serializes and sends `response` (Content-Length framing, HTTP/1.1).
Status WriteHttpResponse(int fd, const HttpResponse& response);

/// Canonical reason phrase for the statuses bagalgd emits.
const char* HttpReasonPhrase(int status);

/// StatusCode → HTTP status. kUnavailable maps to 503; the admission queue
/// uses 429 directly for shed (same retryable class, more precise signal).
int HttpStatusForCode(StatusCode code);

}  // namespace bagalg::net

#endif  // BAGALG_NET_HTTP_H_
