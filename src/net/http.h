#ifndef BAGALG_NET_HTTP_H_
#define BAGALG_NET_HTTP_H_

/// \file http.h
/// A deliberately small HTTP/1.1 server-side implementation: exactly what
/// bagalgd needs — request parsing with hard caps, keep-alive with
/// pipelining, chunked response emission for streamed bodies — and nothing
/// it does not (no request-side chunked bodies, no TLS, no multipart).
/// Every limit violation and malformation is a typed Status so the
/// connection loop can answer 400/413 instead of guessing.
///
/// The parser is an *incremental* state machine (HttpReader): the epoll
/// connection layer feeds it whatever bytes recv produced and asks for
/// complete requests. Bytes after a parsed body — the next pipelined
/// request — stay buffered for the following Next() call; they are never
/// dropped, and they never count against the next request's header cap
/// until they are that request's header bytes. The blocking
/// ReadHttpRequest wrapper (tests, simple clients) runs the same machine.
///
/// Also home of the StatusCode → HTTP status mapping, the outward face of
/// the retryability contract in src/util/status.h: retryable codes map to
/// statuses clients treat as transient (429/499/503/504), permanent codes
/// to 4xx/5xx they must not blindly retry.

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/result.h"

namespace bagalg::net {

struct HttpLimits {
  /// Cap on the request line + headers block. Exceeding it is a 431-shaped
  /// kResourceExhausted.
  size_t max_header_bytes = 16 * 1024;
  /// Cap on Content-Length. Exceeding it is a 413-shaped
  /// kResourceExhausted; a statement this large is an attack, not a query.
  size_t max_body_bytes = 1024 * 1024;
  /// Poll granularity while waiting for request bytes in the blocking
  /// reader; bounds how long a drain waits on an idle connection.
  int read_poll_ms = 100;
};

struct HttpRequest {
  std::string method;  // uppercase as sent: GET, POST, ...
  std::string path;    // target up to '?'
  std::string query;   // after '?', possibly empty
  /// True for HTTP/1.1 (keep-alive by default); false for HTTP/1.0
  /// (bagalgd answers 1.0 clients and closes — no 1.0 keep-alive).
  bool http11 = true;
  /// Header names lowercased; last occurrence wins.
  std::map<std::string, std::string> headers;
  std::string body;
};

/// True when the connection must close after answering `request`:
/// an explicit "Connection: close", or an HTTP/1.0 client.
bool RequestWantsClose(const HttpRequest& request);

/// Incremental request parser: feed bytes as they arrive, pull complete
/// requests. One reader per connection; state persists across requests so
/// keep-alive pipelining works regardless of how recv chunks the stream.
class HttpReader {
 public:
  HttpReader() = default;
  explicit HttpReader(HttpLimits limits) : limits_(limits) {}

  /// Appends raw bytes received from the socket.
  void Feed(std::string_view bytes);

  /// Tries to extract the next complete request.
  ///   ok(true)   *out holds the request; trailing pipelined bytes remain
  ///              buffered for the next call.
  ///   ok(false)  more bytes are needed (call Feed, then Next again).
  ///   error      kParseError (400), kResourceExhausted (431/413) — the
  ///              connection is poisoned; answer and close.
  Result<bool> Next(HttpRequest* out);

  /// Unconsumed byte count (partial request and/or pipelined followers).
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

  /// True while a parsed request head is waiting for its body bytes —
  /// an EOF here means the peer vanished mid-request, not a clean close.
  bool mid_request() const { return have_head_; }

  /// Moves the unconsumed bytes out (resets the reader). The blocking
  /// wrapper uses this to hand leftovers back to its caller's buffer.
  std::string TakeRemainder();

 private:
  HttpLimits limits_;
  std::string buffer_;
  size_t pos_ = 0;   // start of the current unparsed request
  size_t scan_ = 0;  // high-water mark of the head-terminator search
  bool have_head_ = false;
  HttpRequest pending_;    // parsed head awaiting body bytes
  size_t body_start_ = 0;  // absolute offset of the pending body
  size_t body_len_ = 0;
};

/// Reads one request from `fd`, blocking. `buffer` carries bytes left over
/// from the previous request on this connection (keep-alive pipelining)
/// and must persist across calls. `should_stop` is polled while waiting
/// for bytes; when it turns true between requests the read aborts with
/// kCancelled("draining").
///
/// Error map: kCancelled = orderly close or drain (close quietly);
/// kUnavailable = the peer vanished mid-request or injected io fault;
/// kParseError = malformed request (answer 400); kResourceExhausted =
/// header/body cap exceeded (answer 431/413).
Result<HttpRequest> ReadHttpRequest(int fd, std::string* buffer,
                                    const HttpLimits& limits,
                                    const std::function<bool()>& should_stop);

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
  /// Sends "Connection: close" and ends the connection after this response.
  bool close = false;
};

/// Serializes `response` into on-the-wire bytes (Content-Length framing).
std::string FormatHttpResponse(const HttpResponse& response);

/// Serializes only the status line + headers. With `chunked` the response
/// uses Transfer-Encoding: chunked and the body must follow as
/// AppendHttpChunk calls closed by AppendHttpLastChunk; otherwise a
/// Content-Length of `content_length` is emitted and the caller sends
/// exactly that many body bytes.
std::string FormatHttpResponseHead(const HttpResponse& response, bool chunked,
                                   size_t content_length);

/// Appends one chunked-transfer chunk (no-op for empty `data`: an empty
/// chunk would terminate the stream).
void AppendHttpChunk(std::string_view data, std::string* out);
/// Appends the stream-terminating zero chunk.
void AppendHttpLastChunk(std::string* out);

/// Serializes and sends `response` (Content-Length framing, HTTP/1.1).
Status WriteHttpResponse(int fd, const HttpResponse& response);

/// Canonical reason phrase for the statuses bagalgd emits.
const char* HttpReasonPhrase(int status);

/// StatusCode → HTTP status. kUnavailable maps to 503; the admission queue
/// uses 429 directly for shed (same retryable class, more precise signal).
int HttpStatusForCode(StatusCode code);

}  // namespace bagalg::net

#endif  // BAGALG_NET_HTTP_H_
