#ifndef BAGALG_NET_EPOLL_H_
#define BAGALG_NET_EPOLL_H_

/// \file epoll.h
/// A thin RAII wrapper over epoll(7) for the bagalgd event loop.
///
/// The loop runs level-triggered: correctness never depends on draining a
/// socket to EAGAIN inside one readiness notification, so a connection
/// state machine that stops mid-buffer (backpressure, bounded reads) is
/// simply re-notified on the next Wait. Each registered fd carries a
/// uint64 tag the server uses as the connection id; the listener and the
/// cross-thread wakeup eventfd get reserved tags.

#include <cstdint>
#include <sys/epoll.h>
#include <vector>

#include "src/net/io.h"
#include "src/util/result.h"

namespace bagalg::net {

/// One readiness notification: which registered tag, and what it is ready
/// for (a bitmask of EPOLLIN / EPOLLOUT / EPOLLHUP / EPOLLERR / ...).
struct ReadyEvent {
  uint64_t tag = 0;
  uint32_t events = 0;
};

class EpollLoop {
 public:
  static Result<EpollLoop> Create();

  EpollLoop() = default;
  EpollLoop(EpollLoop&&) = default;
  EpollLoop& operator=(EpollLoop&&) = default;

  /// Registers `fd` with interest mask `events` (level-triggered), tagged.
  Status Add(int fd, uint32_t events, uint64_t tag);
  /// Replaces the interest mask of a registered fd.
  Status Modify(int fd, uint32_t events, uint64_t tag);
  /// Deregisters `fd`. Safe to call for an fd about to be closed.
  Status Remove(int fd);

  /// Waits up to `timeout_ms` (-1 = forever) and appends the ready set to
  /// `*out` (cleared first). EINTR is retried. Returns the ready count.
  Result<int> Wait(std::vector<ReadyEvent>* out, int timeout_ms);

  /// Number of currently registered fds (the server.epoll.fds gauge).
  size_t registered() const { return registered_; }

 private:
  Fd epoll_fd_;
  size_t registered_ = 0;
  std::vector<epoll_event> scratch_;
};

}  // namespace bagalg::net

#endif  // BAGALG_NET_EPOLL_H_
