#ifndef BAGALG_STATS_SAMPLER_H_
#define BAGALG_STATS_SAMPLER_H_

/// \file sampler.h
/// Random instance generators.
///
/// Property tests draw random bags/databases from these samplers, and the
/// asymptotic-probability experiments (paper Example 4.2, the 0–1 law
/// discussion of §4) draw random monadic instances and graphs. All sampling
/// is driven by the deterministic Rng, so every experiment is reproducible
/// from its seed.

#include <string>
#include <vector>

#include "src/core/value.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace bagalg {

/// Parameters for random flat bags.
struct FlatBagSpec {
  /// Tuple arity (0 allowed).
  size_t arity = 2;
  /// Number of atoms to draw field values from (atoms named a0..a<n-1> in
  /// the global table).
  size_t num_atoms = 4;
  /// Number of element draws (distinct count will be <= this).
  size_t num_elements = 6;
  /// Multiplicities drawn uniformly from [1, max_mult].
  uint64_t max_mult = 3;
};

/// The pool of atoms a0..a<n-1> as values.
std::vector<Value> AtomPool(size_t n, const std::string& prefix = "a");

/// A random bag of tuples per the spec.
Bag RandomFlatBag(Rng& rng, const FlatBagSpec& spec);

/// A random bag of bags of tuples (one nesting level): `outer` draws of
/// inner bags sampled per `inner_spec`.
Bag RandomNestedBag(Rng& rng, size_t outer, const FlatBagSpec& inner_spec);

/// A random directed graph over atoms v0..v<n-1>: each ordered pair is an
/// edge independently with probability p; result is a set-like bag of
/// binary tuples.
Bag RandomGraph(Rng& rng, size_t num_nodes, double p);

/// A random monadic relation over the given atom pool: each atom is
/// included (as a unary tuple, multiplicity 1) independently with
/// probability p.
Bag RandomMonadic(Rng& rng, const std::vector<Value>& atoms, double p);

/// The reflexive total order bag {[ai, aj] : i <= j} over `atoms` in pool
/// order — the order relation assumed by the §4 parity query.
Bag TotalOrderLeq(const std::vector<Value>& atoms);

}  // namespace bagalg

#endif  // BAGALG_STATS_SAMPLER_H_
