#include "src/stats/sampler.h"

#include <cassert>

namespace bagalg {

std::vector<Value> AtomPool(size_t n, const std::string& prefix) {
  std::vector<Value> atoms;
  atoms.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    atoms.push_back(MakeAtom(prefix + std::to_string(i)));
  }
  return atoms;
}

Bag RandomFlatBag(Rng& rng, const FlatBagSpec& spec) {
  std::vector<Value> atoms = AtomPool(spec.num_atoms);
  Bag::Builder builder;
  for (size_t i = 0; i < spec.num_elements; ++i) {
    std::vector<Value> fields;
    fields.reserve(spec.arity);
    for (size_t j = 0; j < spec.arity; ++j) {
      fields.push_back(atoms[rng.Below(atoms.size())]);
    }
    builder.Add(Value::Tuple(std::move(fields)),
                Mult(rng.Range(1, spec.max_mult)));
  }
  auto bag = std::move(builder).Build();
  assert(bag.ok());
  return std::move(bag).value();
}

Bag RandomNestedBag(Rng& rng, size_t outer, const FlatBagSpec& inner_spec) {
  Bag::Builder builder;
  for (size_t i = 0; i < outer; ++i) {
    builder.Add(Value::FromBag(RandomFlatBag(rng, inner_spec)),
                Mult(rng.Range(1, inner_spec.max_mult)));
  }
  auto bag = std::move(builder).Build();
  assert(bag.ok());
  return std::move(bag).value();
}

Bag RandomGraph(Rng& rng, size_t num_nodes, double p) {
  std::vector<Value> nodes = AtomPool(num_nodes, "v");
  Bag::Builder builder;
  for (size_t i = 0; i < num_nodes; ++i) {
    for (size_t j = 0; j < num_nodes; ++j) {
      if (rng.Coin(p)) {
        builder.AddOne(Value::Tuple({nodes[i], nodes[j]}));
      }
    }
  }
  auto bag = std::move(builder).Build();
  assert(bag.ok());
  return std::move(bag).value();
}

Bag RandomMonadic(Rng& rng, const std::vector<Value>& atoms, double p) {
  Bag::Builder builder;
  for (const Value& a : atoms) {
    if (rng.Coin(p)) builder.AddOne(Value::Tuple({a}));
  }
  auto bag = std::move(builder).Build();
  assert(bag.ok());
  return std::move(bag).value();
}

Bag TotalOrderLeq(const std::vector<Value>& atoms) {
  Bag::Builder builder;
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i; j < atoms.size(); ++j) {
      builder.AddOne(Value::Tuple({atoms[i], atoms[j]}));
    }
  }
  auto bag = std::move(builder).Build();
  assert(bag.ok());
  return std::move(bag).value();
}

}  // namespace bagalg
