#ifndef BAGALG_STATS_PROBABILITY_H_
#define BAGALG_STATS_PROBABILITY_H_

/// \file probability.h
/// Asymptotic-probability experiments (paper §4, Example 4.2).
///
/// RALG boolean queries without constants obey a 0–1 law; BALG¹ does not:
/// the cardinality-comparison query |R| > |S| has asymptotic probability
/// 1/2 ([FGT93]). These estimators sample random instances, evaluate the
/// *algebra expression* (not a shortcut), and report the empirical
/// probability, letting bench_probability chart convergence toward the
/// paper's limits.

#include <functional>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace bagalg {

/// One estimate: fraction of sampled instances on which the query was
/// nonempty.
struct ProbabilityEstimate {
  double probability = 0.0;
  size_t trials = 0;
};

/// Estimates Pr[query(db) nonempty] over `trials` databases drawn from
/// `sampler`. The query must be a bag-denoting BALG expression over the
/// sampled schema.
Result<ProbabilityEstimate> EstimateNonemptyProbability(
    const Expr& query, const std::function<Database(Rng&)>& sampler,
    size_t trials, Rng& rng);

/// Example 4.2 experiment: random monadic R, S over n atoms (each atom kept
/// with probability 1/2); query π1(R×R) − π1(R×S) ≠ ∅, i.e. |R| > |S|.
/// Expected limit: 1/2.
Result<ProbabilityEstimate> ProbCardGreater(size_t n_atoms, size_t trials,
                                            Rng& rng);

/// 0–1 law contrast: the constant-free RALG-style query "R is nonempty"
/// over the same sampling. Expected limit: 1.
Result<ProbabilityEstimate> ProbNonemptyMonadic(size_t n_atoms, size_t trials,
                                                Rng& rng);

/// Second contrast: the Härtig-style query |R| = |S| over the same
/// sampling. Expected limit: 0 ([FGT93] — probabilities are 0, 1/2 or 1).
Result<ProbabilityEstimate> ProbCardEqual(size_t n_atoms, size_t trials,
                                          Rng& rng);

}  // namespace bagalg

#endif  // BAGALG_STATS_PROBABILITY_H_
