#include "src/stats/probability.h"

#include <cassert>

#include "src/algebra/builder.h"
#include "src/algebra/derived.h"
#include "src/algebra/eval.h"
#include "src/stats/sampler.h"

namespace bagalg {

Result<ProbabilityEstimate> EstimateNonemptyProbability(
    const Expr& query, const std::function<Database(Rng&)>& sampler,
    size_t trials, Rng& rng) {
  size_t hits = 0;
  Evaluator eval;
  for (size_t t = 0; t < trials; ++t) {
    Database db = sampler(rng);
    BAGALG_ASSIGN_OR_RETURN(Bag out, eval.EvalToBag(query, db));
    if (!out.empty()) ++hits;
  }
  ProbabilityEstimate estimate;
  estimate.trials = trials;
  estimate.probability =
      trials == 0 ? 0.0
                  : static_cast<double>(hits) / static_cast<double>(trials);
  return estimate;
}

namespace {

Database SampleMonadicPair(Rng& rng, size_t n_atoms) {
  std::vector<Value> atoms = AtomPool(n_atoms);
  Database db;
  Status st = db.Put("R", RandomMonadic(rng, atoms, 0.5));
  assert(st.ok());
  st = db.Put("S", RandomMonadic(rng, atoms, 0.5));
  assert(st.ok());
  // Keep schema stable even when a sampled bag came out empty.
  st = db.Declare("R", Type::Bag(Type::Tuple({Type::Atom()})));
  assert(st.ok());
  st = db.Declare("S", Type::Bag(Type::Tuple({Type::Atom()})));
  assert(st.ok());
  (void)st;
  return db;
}

}  // namespace

Result<ProbabilityEstimate> ProbCardGreater(size_t n_atoms, size_t trials,
                                            Rng& rng) {
  Expr query = CardGreater(Input("R"), Input("S"));
  return EstimateNonemptyProbability(
      query, [n_atoms](Rng& r) { return SampleMonadicPair(r, n_atoms); },
      trials, rng);
}

Result<ProbabilityEstimate> ProbNonemptyMonadic(size_t n_atoms, size_t trials,
                                                Rng& rng) {
  Expr query = Input("R");
  return EstimateNonemptyProbability(
      query, [n_atoms](Rng& r) { return SampleMonadicPair(r, n_atoms); },
      trials, rng);
}

Result<ProbabilityEstimate> ProbCardEqual(size_t n_atoms, size_t trials,
                                          Rng& rng) {
  Expr query = CardEqual(Input("R"), Input("S"), MakeAtom("u"));
  return EstimateNonemptyProbability(
      query, [n_atoms](Rng& r) { return SampleMonadicPair(r, n_atoms); },
      trials, rng);
}

}  // namespace bagalg
