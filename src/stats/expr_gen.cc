#include "src/stats/expr_gen.h"

#include <vector>

#include "src/algebra/builder.h"
#include "src/algebra/typecheck.h"
#include "src/stats/sampler.h"

namespace bagalg {

namespace {

struct Typed {
  Expr expr;
  Type type;  // always a bag type here
};

/// A small constant bag of tuples over the atom pool.
Typed RandomConstBag(Rng& rng, const std::vector<Value>& atoms) {
  size_t arity = rng.Range(1, 2);
  Bag::Builder builder;
  size_t elements = rng.Range(1, 3);
  for (size_t i = 0; i < elements; ++i) {
    std::vector<Value> fields;
    for (size_t j = 0; j < arity; ++j) {
      fields.push_back(atoms[rng.Below(atoms.size())]);
    }
    builder.Add(Value::Tuple(std::move(fields)), Mult(rng.Range(1, 3)));
  }
  Bag bag = std::move(builder).Build().value();
  Type type = bag.type();
  return Typed{ConstBag(std::move(bag)), std::move(type)};
}

class Generator {
 public:
  Generator(Rng& rng, const Schema& schema, const ExprGenOptions& options)
      : rng_(rng), options_(options) {
    for (const auto& [name, type] : schema) {
      pool_.push_back(Typed{Input(name), type});
    }
    std::vector<Value> atoms = AtomPool(options.num_const_atoms, "g");
    atoms_ = atoms;
    pool_.push_back(RandomConstBag(rng_, atoms_));
  }

  Result<Expr> Generate() {
    if (pool_.empty()) {
      return Status::InvalidArgument("expression generator needs inputs");
    }
    for (int round = 0; round < options_.growth_rounds; ++round) {
      GrowOnce();
    }
    // Prefer the most recently generated (largest) candidates.
    size_t idx = pool_.size() - 1 - rng_.Below(std::min<size_t>(3, pool_.size()));
    return pool_[idx].expr;
  }

 private:
  const Typed& Pick() { return pool_[rng_.Below(pool_.size())]; }

  /// A random pool member whose type equals `t`, if any.
  const Typed* PickWithType(const Type& t) {
    std::vector<const Typed*> matches;
    for (const Typed& c : pool_) {
      if (c.type == t) matches.push_back(&c);
    }
    if (matches.empty()) return nullptr;
    return matches[rng_.Below(matches.size())];
  }

  void Push(Expr e, Type t) {
    pool_.push_back(Typed{std::move(e), std::move(t)});
  }

  void GrowOnce() {
    switch (rng_.Below(11)) {
      case 0: {  // merge ops on same-typed operands
        const Typed& a = Pick();
        const Typed* b = PickWithType(a.type);
        if (b == nullptr) return;
        switch (rng_.Below(4)) {
          case 0:
            Push(Uplus(a.expr, b->expr), a.type);
            return;
          case 1:
            Push(Umax(a.expr, b->expr), a.type);
            return;
          case 2:
            Push(Inter(a.expr, b->expr), a.type);
            return;
          default:
            if (!options_.allow_monus) return;
            Push(Monus(a.expr, b->expr), a.type);
            return;
        }
      }
      case 1: {  // Cartesian product of tuple bags
        const Typed& a = Pick();
        const Typed& b = Pick();
        if (!a.type.element().IsTuple() || !b.type.element().IsTuple()) {
          return;
        }
        std::vector<Type> fields = a.type.element().fields();
        const auto& bf = b.type.element().fields();
        if (fields.size() + bf.size() > 5) return;  // keep arity sane
        fields.insert(fields.end(), bf.begin(), bf.end());
        Type out = Type::Bag(Type::Tuple(std::move(fields)));
        if (out.BagNesting() > options_.max_bag_nesting) return;
        Push(Product(a.expr, b.expr), std::move(out));
        return;
      }
      case 2: {  // projection via MAP
        const Typed& a = Pick();
        if (!a.type.element().IsTuple()) return;
        size_t arity = a.type.element().fields().size();
        if (arity == 0) return;
        size_t keep = rng_.Range(1, arity);
        std::vector<size_t> attrs;
        std::vector<Type> out_fields;
        for (size_t i = 0; i < keep; ++i) {
          size_t attr = rng_.Range(1, arity);
          attrs.push_back(attr);
          out_fields.push_back(a.type.element().fields()[attr - 1]);
        }
        Push(ProjectAttrs(a.expr, attrs),
             Type::Bag(Type::Tuple(std::move(out_fields))));
        return;
      }
      case 3: {  // selection σ_{i=j} on same-typed attributes
        const Typed& a = Pick();
        if (!a.type.element().IsTuple()) return;
        const auto& fields = a.type.element().fields();
        if (fields.empty()) return;
        size_t i = rng_.Range(1, fields.size());
        size_t j = rng_.Range(1, fields.size());
        if (!(fields[i - 1] == fields[j - 1])) return;
        Push(Select(Proj(Var(0), i), Proj(Var(0), j), a.expr), a.type);
        return;
      }
      case 4: {  // selection σ_{i=const} on an atom attribute
        const Typed& a = Pick();
        if (!a.type.element().IsTuple()) return;
        const auto& fields = a.type.element().fields();
        if (fields.empty()) return;
        size_t i = rng_.Range(1, fields.size());
        if (!fields[i - 1].IsAtom()) return;
        Value c = atoms_[rng_.Below(atoms_.size())];
        Push(Select(Proj(Var(0), i), ConstExpr(c), a.expr), a.type);
        return;
      }
      case 5: {  // duplicate elimination
        if (!options_.allow_dup_elim) return;
        const Typed& a = Pick();
        Push(Eps(a.expr), a.type);
        return;
      }
      case 6: {  // powerset (nesting budget permitting)
        if (!options_.allow_powerset) return;
        const Typed& a = Pick();
        Type out = Type::Bag(a.type);
        if (out.BagNesting() > options_.max_bag_nesting) return;
        Push(Pow(a.expr), std::move(out));
        return;
      }
      case 7: {  // powerbag
        if (!options_.allow_powerbag) return;
        const Typed& a = Pick();
        Type out = Type::Bag(a.type);
        if (out.BagNesting() > options_.max_bag_nesting) return;
        Push(Powbag(a.expr), std::move(out));
        return;
      }
      case 8: {  // bag-destroy on nested bags
        const Typed& a = Pick();
        if (!a.type.element().IsBag()) return;
        Push(Destroy(a.expr), a.type.element());
        return;
      }
      case 9: {  // MAP β — wrap elements as singletons (nesting +1)
        const Typed& a = Pick();
        Type out = Type::Bag(Type::Bag(a.type.element()));
        if (out.BagNesting() > options_.max_bag_nesting) return;
        Push(Map(Beta(Var(0)), a.expr), std::move(out));
        return;
      }
      case 10: {  // nest a random attribute, then sometimes unnest it back
        if (!options_.allow_nest) return;
        const Typed& a = Pick();
        if (!a.type.element().IsTuple()) return;
        const auto& fields = a.type.element().fields();
        if (fields.size() < 2) return;
        size_t attr = rng_.Range(1, fields.size());
        std::vector<Type> key;
        std::vector<Type> group;
        for (size_t i = 0; i < fields.size(); ++i) {
          (i == attr - 1 ? group : key).push_back(fields[i]);
        }
        key.push_back(Type::Bag(Type::Tuple(group)));
        Type nested = Type::Bag(Type::Tuple(key));
        if (nested.BagNesting() > options_.max_bag_nesting) return;
        Expr nested_expr = NestExpr(a.expr, {attr});
        if (rng_.Coin()) {
          Push(std::move(nested_expr), std::move(nested));
          return;
        }
        // Unnest the group column straight back (type: key ++ [group tuple]).
        std::vector<Type> unnested_fields = nested.element().fields();
        unnested_fields.back() = Type::Tuple(group);
        Push(UnnestExpr(std::move(nested_expr), fields.size()),
             Type::Bag(Type::Tuple(std::move(unnested_fields))));
        return;
      }
    }
  }

  Rng& rng_;
  const ExprGenOptions& options_;
  std::vector<Typed> pool_;
  std::vector<Value> atoms_;
};

}  // namespace

Result<Expr> RandomExpr(Rng& rng, const Schema& schema,
                        const ExprGenOptions& options) {
  Generator generator(rng, schema, options);
  BAGALG_ASSIGN_OR_RETURN(Expr e, generator.Generate());
  // Invariant: the generator only builds well-typed expressions; verify
  // against the real checker so the fuzz suite rests on solid ground.
  BAGALG_RETURN_IF_ERROR(TypeOf(e, schema).status());
  return e;
}

}  // namespace bagalg
