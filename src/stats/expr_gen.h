#ifndef BAGALG_STATS_EXPR_GEN_H_
#define BAGALG_STATS_EXPR_GEN_H_

/// \file expr_gen.h
/// Type-directed random generation of BALG expressions.
///
/// The fuzz property suites need a stream of *well-typed* expressions over
/// a schema: the generator grows a pool of typed subexpressions from the
/// schema's inputs and constants, repeatedly applying operators whose
/// typing rules admit the operands, within a bag-nesting budget (so the
/// output stays inside a chosen BALG^k fragment). Properties checked
/// downstream: static type soundness of evaluation ("well-typed queries
/// don't go wrong"), rewriter equivalence, genericity under atom
/// permutation, and printer/parser round-trips.

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace bagalg {

/// Knobs for the generator.
struct ExprGenOptions {
  /// Number of operator-application rounds (final expression size grows
  /// roughly linearly with this).
  int growth_rounds = 12;
  /// Max bag nesting of any subexpression type (the BALG^k bound).
  int max_bag_nesting = 2;
  /// Operator toggles.
  bool allow_powerset = true;
  bool allow_powerbag = false;
  bool allow_dup_elim = true;
  bool allow_monus = true;
  /// nest/unnest (§7 extensions) — off by default so the generated
  /// fragment matches engines that do not implement them (e.g. the
  /// BALG¹ pipeline).
  bool allow_nest = false;
  /// Atom pool size for generated constants / selection constants.
  size_t num_const_atoms = 3;
};

/// Generates a random well-typed bag-denoting expression over `schema`.
/// Every input in the schema must have a bag type. The result is
/// guaranteed to pass TypeOf(expr, schema).
Result<Expr> RandomExpr(Rng& rng, const Schema& schema,
                        const ExprGenOptions& options = ExprGenOptions{});

}  // namespace bagalg

#endif  // BAGALG_STATS_EXPR_GEN_H_
