#include "src/analysis/count_analysis.h"

#include "src/algebra/builder.h"

namespace bagalg::analysis {

CountFunction CountAnalysis::CountOf(const Value& t) const {
  auto it = counts.find(t);
  if (it == counts.end()) return CountFunction{Polynomial(), BigNat(0)};
  return it->second;
}

BigNat CountAnalysis::UniformValidFrom() const {
  BigNat n = zero_floor;
  for (const auto& [t, cf] : counts) {
    (void)t;
    if (cf.valid_from > n) n = cf.valid_from;
  }
  return n;
}

namespace {

/// Evaluates an object-level lambda body (τ / α_i / const / the bound
/// variable) on a concrete value. The Prop 4.1 grammar restricts MAP and σ
/// bodies to tuple-level expressions; anything else is Unsupported.
Result<Value> EvalObjectBody(const Expr& e, const Value* binder) {
  const ExprNode& n = e.node();
  switch (n.kind) {
    case ExprKind::kVar:
      if (binder == nullptr) {
        return Status::Unsupported("free variable in a closed object");
      }
      if (n.index != 0) {
        return Status::Unsupported(
            "count analysis supports one binder level in bodies");
      }
      return *binder;
    case ExprKind::kConst:
      return *n.literal;
    case ExprKind::kTupling: {
      std::vector<Value> fields;
      fields.reserve(n.children.size());
      for (const Expr& c : n.children) {
        BAGALG_ASSIGN_OR_RETURN(Value v, EvalObjectBody(c, binder));
        fields.push_back(std::move(v));
      }
      return Value::Tuple(std::move(fields));
    }
    case ExprKind::kAttrProj: {
      BAGALG_ASSIGN_OR_RETURN(Value v, EvalObjectBody(n.children[0], binder));
      if (!v.IsTuple() || n.index < 1 || n.index > v.fields().size()) {
        return Status::InvalidArgument("bad attribute projection in body");
      }
      return v.fields()[n.index - 1];
    }
    default:
      return Status::Unsupported(
          std::string("operator ") + ExprKindName(n.kind) +
          " in a lambda body is outside the count-analysis fragment");
  }
}

using CountMap = std::map<Value, CountFunction>;

class Analyzer {
 public:
  Analyzer(std::string input_name, Value a_atom)
      : input_name_(std::move(input_name)), a_atom_(std::move(a_atom)) {}

  Result<CountMap> Analyze(const Expr& e) {
    const ExprNode& n = e.node();
    switch (n.kind) {
      case ExprKind::kInput: {
        if (n.name != input_name_) {
          return Status::Unsupported(
              "count analysis is single-input; unexpected bag '" + n.name +
              "'");
        }
        CountMap out;
        out[Value::Tuple({a_atom_})] =
            CountFunction{Polynomial::Identity(), BigNat(0)};
        return out;
      }
      case ExprKind::kConst: {
        if (!n.literal->IsBag()) {
          return Status::Unsupported("non-bag constant at bag position");
        }
        CountMap out;
        for (const BagEntry& entry : n.literal->bag().entries()) {
          out[entry.value] = CountFunction{
              Polynomial::Constant(BigInt(entry.count)), BigNat(0)};
        }
        return out;
      }
      case ExprKind::kBagging: {
        // β(o) for a closed object o.
        BAGALG_ASSIGN_OR_RETURN(Value v,
                                EvalObjectBody(n.children[0], nullptr));
        CountMap out;
        out[v] = CountFunction{Polynomial::Constant(BigInt(1)), BigNat(0)};
        return out;
      }
      case ExprKind::kAdditiveUnion: {
        BAGALG_ASSIGN_OR_RETURN(CountMap a, Analyze(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(CountMap b, Analyze(n.children[1]));
        for (auto& [t, cf] : b) {
          auto it = a.find(t);
          if (it == a.end()) {
            a.emplace(t, std::move(cf));
          } else {
            it->second.poly = it->second.poly + cf.poly;
            it->second.valid_from =
                BigNat::Max(it->second.valid_from, cf.valid_from);
          }
        }
        return a;
      }
      case ExprKind::kSubtract:
        return AnalyzeMonus(n.children[0], n.children[1]);
      case ExprKind::kMaxUnion: {
        // a ∪ b = (a − b) ⊎ b (§3).
        Expr expanded = Uplus(Monus(n.children[0], n.children[1]),
                              n.children[1]);
        return Analyze(expanded);
      }
      case ExprKind::kIntersect: {
        // a ∩ b = a − (a − b) (§3).
        Expr expanded =
            Monus(n.children[0], Monus(n.children[0], n.children[1]));
        return Analyze(expanded);
      }
      case ExprKind::kProduct: {
        BAGALG_ASSIGN_OR_RETURN(CountMap a, Analyze(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(CountMap b, Analyze(n.children[1]));
        CountMap out;
        for (const auto& [t1, cf1] : a) {
          for (const auto& [t2, cf2] : b) {
            std::vector<Value> fields = t1.fields();
            fields.insert(fields.end(), t2.fields().begin(),
                          t2.fields().end());
            Value t = Value::Tuple(std::move(fields));
            Polynomial p = cf1.poly * cf2.poly;
            BigNat nfrom = BigNat::Max(cf1.valid_from, cf2.valid_from);
            auto it = out.find(t);
            if (it == out.end()) {
              out[t] = CountFunction{std::move(p), std::move(nfrom)};
            } else {
              it->second.poly = it->second.poly + p;
              it->second.valid_from =
                  BigNat::Max(it->second.valid_from, nfrom);
            }
          }
        }
        return out;
      }
      case ExprKind::kMap: {
        BAGALG_ASSIGN_OR_RETURN(CountMap src, Analyze(n.children[1]));
        CountMap out;
        for (const auto& [t, cf] : src) {
          BAGALG_ASSIGN_OR_RETURN(Value image,
                                  EvalObjectBody(n.children[0], &t));
          auto it = out.find(image);
          if (it == out.end()) {
            out[image] = cf;
          } else {
            it->second.poly = it->second.poly + cf.poly;
            it->second.valid_from =
                BigNat::Max(it->second.valid_from, cf.valid_from);
          }
        }
        return out;
      }
      case ExprKind::kSelect: {
        BAGALG_ASSIGN_OR_RETURN(CountMap src, Analyze(n.children[2]));
        CountMap out;
        for (const auto& [t, cf] : src) {
          BAGALG_ASSIGN_OR_RETURN(Value lhs,
                                  EvalObjectBody(n.children[0], &t));
          BAGALG_ASSIGN_OR_RETURN(Value rhs,
                                  EvalObjectBody(n.children[1], &t));
          if (lhs == rhs) out.emplace(t, cf);
        }
        return out;
      }
      case ExprKind::kDupElim: {
        // The Prop 4.5 induction step: nonzero polynomials become the
        // constant 1 once they are stably positive.
        BAGALG_ASSIGN_OR_RETURN(CountMap src, Analyze(n.children[0]));
        CountMap out;
        for (const auto& [t, cf] : src) {
          if (cf.poly.IsZero()) continue;
          if (!cf.poly.EventuallyPositive()) {
            zero_floor_ = BigNat::Max(
                zero_floor_,
                BigNat::Max(cf.valid_from, cf.poly.StablePositivityPoint()));
            continue;  // eventually absent
          }
          BigNat nfrom =
              BigNat::Max(cf.valid_from, cf.poly.StablePositivityPoint());
          out[t] = CountFunction{Polynomial::Constant(BigInt(1)),
                                 std::move(nfrom)};
        }
        return out;
      }
      default:
        return Status::Unsupported(
            std::string("operator ") + ExprKindName(n.kind) +
            " is outside the Prop 4.1 count-analysis fragment");
    }
  }

 private:
  Result<CountMap> AnalyzeMonus(const Expr& lhs, const Expr& rhs) {
    BAGALG_ASSIGN_OR_RETURN(CountMap a, Analyze(lhs));
    BAGALG_ASSIGN_OR_RETURN(CountMap b, Analyze(rhs));
    CountMap out;
    for (const auto& [t, cf1] : a) {
      Polynomial p2;
      BigNat n2(0);
      auto it = b.find(t);
      if (it != b.end()) {
        p2 = it->second.poly;
        n2 = it->second.valid_from;
      }
      Polynomial diff = cf1.poly - p2;
      BigNat base = BigNat::Max(cf1.valid_from, n2);
      if (diff.IsZero()) continue;
      BigNat stable = diff.StablePositivityPoint();
      BigNat nfrom = BigNat::Max(base, stable);
      if (diff.EventuallyPositive()) {
        out[t] = CountFunction{std::move(diff), std::move(nfrom)};
      } else {
        // The count is 0 from nfrom on: omit, but remember the floor.
        zero_floor_ = BigNat::Max(zero_floor_, nfrom);
      }
    }
    return out;
  }

  std::string input_name_;
  Value a_atom_;

 public:
  /// Floor accumulated from eliminated tuples; see CountAnalysis.
  BigNat zero_floor_;
};

}  // namespace

Result<CountAnalysis> AnalyzeCounts(const Expr& e,
                                    const std::string& input_name,
                                    const Value& a_atom) {
  Analyzer analyzer(input_name, a_atom);
  BAGALG_ASSIGN_OR_RETURN(CountMap counts, analyzer.Analyze(e));
  CountAnalysis out;
  out.counts = std::move(counts);
  out.zero_floor = analyzer.zero_floor_;
  return out;
}

}  // namespace bagalg::analysis
