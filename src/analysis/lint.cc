#include "src/analysis/lint.h"

#include <algorithm>
#include <utility>

#include "src/algebra/rewrite.h"
#include "src/obs/metrics.h"

namespace bagalg::analysis {

const char* LintSeverityName(LintDiag::Severity s) {
  switch (s) {
    case LintDiag::Severity::kWarning:
      return "warning";
    case LintDiag::Severity::kError:
      return "error";
  }
  return "?";
}

std::string LintDiag::ToString() const {
  return code + " [" + span + "] " + message;
}

const NodeCost* LintContext::CostOf(const Expr& e) const {
  auto it = analysis->per_node.find(e.raw());
  return it == analysis->per_node.end() ? nullptr : &it->second;
}

namespace {

void CollectNodes(const Expr& expr, const std::string& prefix,
                  std::vector<LintContext::NodeRef>* out) {
  std::string path = prefix.empty()
                         ? std::string(ExprKindName(expr->kind))
                         : prefix + " > " + ExprKindName(expr->kind);
  out->push_back({expr, path});
  for (const Expr& c : expr->children) CollectNodes(c, path, out);
}

// ------------------------------------------------------------ built-ins

/// W001: powerset/powerbag applied to an operand whose size is not a static
/// constant — the classic §3 trap: output exponential in the data.
void CheckPowersetUnbounded(const LintContext& ctx,
                            std::vector<LintDiag>* out) {
  for (const auto& ref : ctx.nodes) {
    const ExprNode& n = ref.expr.node();
    if (n.kind != ExprKind::kPowerset && n.kind != ExprKind::kPowerbag) {
      continue;
    }
    const NodeCost* operand = ctx.CostOf(n.children[0]);
    if (operand == nullptr) continue;
    bool constant = operand->bound.IsFinite() && operand->degree() == 0;
    if (constant) continue;
    out->push_back(
        {LintDiag::Severity::kWarning, "W001", ref.path,
         std::string(ExprKindName(n.kind)) +
             " applied to an input-dependent bag (operand size " +
             operand->bound.ToString() +
             "): output is exponential in the data"});
  }
}

/// W002: a product whose size bound reaches the configured polynomial
/// degree — tractable on paper, explosive in practice.
void CheckProductDegree(const LintContext& ctx, std::vector<LintDiag>* out) {
  size_t threshold = ctx.options->product_degree_threshold;
  for (const auto& ref : ctx.nodes) {
    if (ref.expr->kind != ExprKind::kProduct) continue;
    const NodeCost* cost = ctx.CostOf(ref.expr);
    if (cost == nullptr || !cost->bound.IsFinite()) continue;
    size_t degree = cost->degree();
    if (degree < threshold) continue;
    // Flag only the outermost product of a chain: a parent product already
    // reports the full degree.
    out->push_back({LintDiag::Severity::kWarning, "W002", ref.path,
                    "product chain of degree " + std::to_string(degree) +
                        " (bound " + cost->bound.ToString() +
                        "); consider selecting before joining"});
  }
}

/// W003: e ∸ e annihilates to the empty bag.
void CheckSubtractionAnnihilates(const LintContext& ctx,
                                 std::vector<LintDiag>* out) {
  for (const auto& ref : ctx.nodes) {
    const ExprNode& n = ref.expr.node();
    if (n.kind != ExprKind::kSubtract) continue;
    if (!ExprEquals(n.children[0], n.children[1])) continue;
    out->push_back({LintDiag::Severity::kWarning, "W003", ref.path,
                    "monus of an expression with itself is always the "
                    "empty bag"});
  }
}

/// W004: the rewriter still finds applicable rules — the query text is not
/// in optimized form.
void CheckRewriteMissed(const LintContext& ctx, std::vector<LintDiag>* out) {
  if (ctx.nodes.empty()) return;
  const Expr& root = ctx.nodes.front().expr;
  std::map<std::string, size_t> applied;
  auto rewritten = Optimize(root, *ctx.schema, RewriteOptions{}, &applied);
  if (!rewritten.ok() || applied.empty()) return;
  std::string rules;
  size_t total = 0;
  for (const auto& [name, count] : applied) {
    if (!rules.empty()) rules += ", ";
    rules += name + "*" + std::to_string(count);
    total += count;
  }
  out->push_back({LintDiag::Severity::kWarning, "W004",
                  ctx.nodes.front().path,
                  "optimizer would apply " + std::to_string(total) +
                      " rewrite(s): " + rules});
}

/// W005: a materializing powerset/powerbag sits in pipeline position — as
/// the direct source of a streaming operator (MAP, σ, ×, ⊎, ε) — so the
/// fused IR engine cannot lower the plan and falls back to tuple-at-a-time
/// execution (src/ir rejects P/P_b; see docs/IR.md legality conditions).
void CheckPowersetBlocksFusion(const LintContext& ctx,
                               std::vector<LintDiag>* out) {
  auto is_power = [](const Expr& e) {
    return e->kind == ExprKind::kPowerset || e->kind == ExprKind::kPowerbag;
  };
  for (const auto& ref : ctx.nodes) {
    const ExprNode& n = ref.expr.node();
    std::vector<size_t> sources;
    switch (n.kind) {
      case ExprKind::kMap:
        sources = {1};
        break;
      case ExprKind::kSelect:
        sources = {2};
        break;
      case ExprKind::kProduct:
      case ExprKind::kAdditiveUnion:
        sources = {0, 1};
        break;
      case ExprKind::kDupElim:
        sources = {0};
        break;
      default:
        continue;
    }
    for (size_t i : sources) {
      if (i >= n.children.size() || !is_power(n.children[i])) continue;
      out->push_back(
          {LintDiag::Severity::kWarning, "W005", ref.path,
           std::string(ExprKindName(n.children[i]->kind)) +
               " feeds a streaming " + ExprKindName(n.kind) +
               ": the plan is fusion-ineligible and the IR engine falls "
               "back to tuple-at-a-time execution; rewrite to push the " +
               ExprKindName(n.kind) +
               " below the powerset's operand, or hoist the powerset out "
               "of the pipeline"});
    }
  }
}

/// Conservative syntactic proof that `e` denotes a duplicate-free bag.
/// Mirrors (a fragment of) the IR fact lattice's dup_free bit at the
/// algebra level: ε and P are dup-free by construction; set-like inputs and
/// literals are dup-free by inspection; σ and monus never raise a
/// multiplicity above the source's; ∩ keeps the minimum of the two sides;
/// ∪ (max-union) of two dup-free bags caps every count at 1; MAP with an
/// identity body returns its source unchanged.
bool ProvablyDupFree(const LintContext& ctx, const Expr& e) {
  const ExprNode& n = e.node();
  switch (n.kind) {
    case ExprKind::kDupElim:
    case ExprKind::kPowerset:
      return true;
    case ExprKind::kInput: {
      if (ctx.facts == nullptr || ctx.facts->db == nullptr) return false;
      Result<Bag> bag = ctx.facts->db->Get(n.name);
      return bag.ok() && bag.value().IsSetLike();
    }
    case ExprKind::kConst:
      return n.literal.has_value() && n.literal->IsBag() &&
             n.literal->bag().IsSetLike();
    case ExprKind::kSelect:
      return ProvablyDupFree(ctx, n.children[2]);
    case ExprKind::kSubtract:
      return ProvablyDupFree(ctx, n.children[0]);
    case ExprKind::kIntersect:
      return ProvablyDupFree(ctx, n.children[0]) ||
             ProvablyDupFree(ctx, n.children[1]);
    case ExprKind::kMaxUnion:
      return ProvablyDupFree(ctx, n.children[0]) &&
             ProvablyDupFree(ctx, n.children[1]);
    case ExprKind::kMap: {
      const ExprNode& body = n.children[0].node();
      bool identity = body.kind == ExprKind::kVar && body.index == 0;
      return identity && ProvablyDupFree(ctx, n.children[1]);
    }
    default:
      return false;
  }
}

/// W006: ε over a provably duplicate-free operand is the identity.
void CheckRedundantDupElim(const LintContext& ctx,
                           std::vector<LintDiag>* out) {
  for (const auto& ref : ctx.nodes) {
    const ExprNode& n = ref.expr.node();
    if (n.kind != ExprKind::kDupElim) continue;
    if (!ProvablyDupFree(ctx, n.children[0])) continue;
    out->push_back(
        {LintDiag::Severity::kWarning, "W006", ref.path,
         "dup-elim of a provably duplicate-free operand (" +
             std::string(ExprKindName(n.children[0]->kind)) +
             ") is the identity; the IR drop-redundant-dup-elim pass "
             "removes it at runtime, and the query text can drop it too"});
  }
}

/// Collects the 1-based attributes `body` reads off the binder at de Bruijn
/// depth `depth` via α_i(Var(depth)). False when the row itself escapes
/// (Var(depth) in any other position) — the caller must assume every
/// column is live.
bool LambdaColumnRefs(const Expr& body, size_t depth,
                      std::vector<size_t>* refs) {
  const ExprNode& n = body.node();
  if (n.kind == ExprKind::kAttrProj) {
    const ExprNode& operand = n.children[0].node();
    if (operand.kind == ExprKind::kVar && operand.index == depth) {
      refs->push_back(n.index);
      return true;
    }
  }
  if (n.kind == ExprKind::kVar && n.index == depth) return false;
  for (size_t i = 0; i < n.children.size(); ++i) {
    size_t child_depth =
        depth + static_cast<size_t>(BindersIntroduced(n.kind, i));
    if (!LambdaColumnRefs(n.children[i], child_depth, refs)) return false;
  }
  return true;
}

/// W007: a MAP builds a k-column tuple of which the consuming MAP/σ reads
/// only a strict subset — the unread columns are dead in the query text.
void CheckDeadProjectionColumns(const LintContext& ctx,
                                std::vector<LintDiag>* out) {
  for (const auto& ref : ctx.nodes) {
    const ExprNode& n = ref.expr.node();
    // The consumer's read set over its source rows.
    std::vector<size_t> used;
    const Expr* source = nullptr;
    if (n.kind == ExprKind::kMap) {
      if (!LambdaColumnRefs(n.children[0], 0, &used)) continue;
      source = &n.children[1];
    } else if (n.kind == ExprKind::kSelect) {
      if (!LambdaColumnRefs(n.children[0], 0, &used) ||
          !LambdaColumnRefs(n.children[1], 0, &used)) {
        continue;
      }
      source = &n.children[2];
    } else {
      continue;
    }
    // The source must be a MAP whose body is a τ(...) literal projection.
    const ExprNode& producer = source->node();
    if (producer.kind != ExprKind::kMap) continue;
    const ExprNode& body = producer.children[0].node();
    if (body.kind != ExprKind::kTupling) continue;
    const size_t arity = body.children.size();
    std::vector<size_t> dead;
    for (size_t col = 1; col <= arity; ++col) {
      if (std::find(used.begin(), used.end(), col) == used.end()) {
        dead.push_back(col);
      }
    }
    if (dead.empty()) continue;
    std::string cols;
    for (size_t col : dead) {
      if (!cols.empty()) cols += ", ";
      cols += std::to_string(col);
    }
    out->push_back(
        {LintDiag::Severity::kWarning, "W007",
         ref.path + " > " + ExprKindName(producer.kind),
         "projection builds a " + std::to_string(arity) +
             "-column tuple but its consumer reads only " +
             std::to_string(arity - dead.size()) + " (dead columns: " +
             cols + "); the IR dead-column pass prunes them at runtime, "
             "and the source projection can be narrowed too"});
  }
}

/// E001: a subexpression's estimated output provably exceeds the budget.
void CheckBudgetExceeded(const LintContext& ctx, std::vector<LintDiag>* out) {
  const CostBudget* budget = ctx.options->budget;
  if (budget == nullptr) return;
  const BigNat& max = budget->max_estimated_size;
  for (const auto& ref : ctx.nodes) {
    const NodeCost* cost = ctx.CostOf(ref.expr);
    if (cost == nullptr) continue;
    if (!ExceedsBudget(cost->bound, max)) continue;
    out->push_back({LintDiag::Severity::kError, "E001", ref.path,
                    "estimated output size " + cost->bound.ToString() +
                        " exceeds budget " + max.ToString()});
    return;  // one offender is enough; deeper nodes repeat the story
  }
}

}  // namespace

LintRuleRegistry& LintRuleRegistry::Global() {
  static LintRuleRegistry* registry = [] {
    auto* r = new LintRuleRegistry();
    r->Register({"W001", "powerset on input-dependent bag",
                 CheckPowersetUnbounded});
    r->Register({"W002", "high-degree product chain", CheckProductDegree});
    r->Register({"W003", "subtraction annihilates",
                 CheckSubtractionAnnihilates});
    r->Register({"W004", "rewrite opportunities missed", CheckRewriteMissed});
    r->Register({"W005", "powerset blocks pipeline fusion",
                 CheckPowersetBlocksFusion});
    r->Register({"W006", "redundant dup-elim", CheckRedundantDupElim});
    r->Register({"W007", "dead columns in a projection",
                 CheckDeadProjectionColumns});
    r->Register({"E001", "estimated output exceeds budget",
                 CheckBudgetExceeded});
    return r;
  }();
  return *registry;
}

void LintRuleRegistry::Register(LintRule rule) {
  auto it = std::find_if(rules_.begin(), rules_.end(), [&](const LintRule& r) {
    return r.code == rule.code;
  });
  if (it != rules_.end()) {
    *it = std::move(rule);
  } else {
    rules_.push_back(std::move(rule));
  }
}

Result<std::vector<LintDiag>> RunLint(const Expr& expr, const Schema& schema,
                                      const CostFacts& facts,
                                      const LintOptions& options) {
  BAGALG_ASSIGN_OR_RETURN(CostAnalysis analysis,
                          AnalyzeCost(expr, schema, facts));
  LintContext ctx;
  CollectNodes(expr, "", &ctx.nodes);
  ctx.schema = &schema;
  ctx.facts = &facts;
  ctx.analysis = &analysis;
  ctx.options = &options;
  std::vector<LintDiag> diags;
  for (const LintRule& rule : LintRuleRegistry::Global().rules()) {
    rule.check(ctx, &diags);
  }
  if (options.record_metrics) {
    for (const LintDiag& d : diags) {
      obs::GlobalMetrics().GetCounter("lint.diags." + d.code)->Increment();
    }
  }
  return diags;
}

}  // namespace bagalg::analysis
