#ifndef BAGALG_ANALYSIS_STATIC_COST_H_
#define BAGALG_ANALYSIS_STATIC_COST_H_

/// \file static_cost.h
/// Static tractability and output-size analysis of BALG expressions.
///
/// The paper's central tractability result is *syntactic* (§3, Prop 3.2):
/// every query avoiding powerset/powerbag computes in polynomial time, while
/// a single P node can blow the output up hyperexponentially. This module
/// turns that dichotomy into a compiler-style pre-execution analysis: a
/// bottom-up abstract interpreter derives, for every subexpression,
///
///  (a) a tractability class — kPolynomial (no P/P_b below) or
///      kExponentialTower with the powerset-nesting height of §6;
///  (b) an upper bound on the output's total cardinality as a Polynomial in
///      the symbolic input size n, or a constant evaluated with BigNat
///      arithmetic when the analysis is bound to a concrete Database.
///
/// The bound is *sound*: bound >= the actual evaluated size whenever a bound
/// is produced at all (validated against the evaluator in
/// tests/static_cost_test.cc). On top of the analysis sit the lint rules of
/// lint.h and the CostBudget admission check consulted by the evaluator and
/// the exec pipeline before running a query.

#include <functional>
#include <map>
#include <string>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/analysis/polynomial.h"
#include "src/util/bignat.h"
#include "src/util/result.h"

namespace bagalg::analysis {

/// The §3 dichotomy, decided syntactically: an expression is kPolynomial iff
/// no powerset/powerbag occurs in its subtree.
enum class Tractability {
  kPolynomial,
  kExponentialTower,
};

const char* TractabilityName(Tractability t);

/// Upper bound on an output size, as a lattice over polynomials in the
/// symbolic input cardinality n (all coefficients non-negative).
struct SizeBound {
  enum class Kind {
    /// poly(n) is a sound upper bound (a constant polynomial in exact mode).
    kPoly,
    /// Finite but provably astronomical: at least 2^kAstronomicalBits.
    /// Produced by powerset on symbolic inputs and by exponent towers too
    /// large to materialize. Exceeds every expressible CostBudget.
    kAstronomical,
    /// No bound derivable (unbounded fixpoint iteration).
    kUnknown,
  };

  /// Bit-size threshold beyond which exact exponents are not materialized.
  static constexpr uint64_t kAstronomicalBits = 1u << 20;

  Kind kind = Kind::kPoly;
  Polynomial poly;  ///< Meaningful iff kind == kPoly.

  static SizeBound Finite(Polynomial p);
  static SizeBound Constant(BigNat c);
  static SizeBound Astronomical();
  static SizeBound Unknown();

  bool IsFinite() const { return kind == Kind::kPoly; }

  /// Lattice arithmetic (sound for upper bounds; unknown absorbs, except in
  /// Min where the other side remains a valid bound).
  static SizeBound Add(const SizeBound& a, const SizeBound& b);
  static SizeBound Mul(const SizeBound& a, const SizeBound& b);
  /// Coefficient-wise max: an upper bound for both (coefficients are >= 0).
  static SizeBound Join(const SizeBound& a, const SizeBound& b);
  /// Picks one of the two bounds, preferring the smaller; sound for results
  /// dominated by *both* operands (intersection).
  static SizeBound Min(const SizeBound& a, const SizeBound& b);
  /// 2^a, materialized exactly while the exponent stays below
  /// kAstronomicalBits and the operand is a constant; kAstronomical beyond.
  static SizeBound Exp2(const SizeBound& a);

  /// "<= 42", "<= 2n^2 + 1", "astronomical (>= 2^2^20)", or "unbounded".
  std::string ToString() const;
};

/// Per-node verdict of the analysis.
struct NodeCost {
  Tractability cls = Tractability::kPolynomial;
  /// Max powerset/powerbag nodes on a root-to-leaf path of this subtree
  /// (the i of BALG^k_i; 0 iff cls == kPolynomial).
  int tower_height = 0;
  /// Upper bound on the node's output size: total cardinality (duplicates
  /// included) for bag-denoting nodes, 1 for atoms/tuples.
  SizeBound bound;

  /// Degree of the size bound, when finite.
  size_t degree() const { return bound.poly.Degree(); }
};

/// Where the analyzer gets its per-input cardinality facts.
struct CostFacts {
  /// When non-null, every input's size is read off the bound instance
  /// (constant bounds, BigNat-evaluated). The pointer is borrowed; the
  /// Database must outlive the analysis call.
  const Database* db = nullptr;

  /// Symbolic mode: every input bag — and every bag nested inside an input
  /// value — is assumed to have total cardinality at most n, the single
  /// symbolic variable of the bound polynomials.
  static CostFacts Symbolic() { return CostFacts{}; }
  /// Exact mode, bound to a concrete instance.
  static CostFacts Exact(const Database& db) { return CostFacts{&db}; }
};

/// The full analysis result.
struct CostAnalysis {
  /// The root expression's verdict.
  NodeCost root;
  /// Verdicts for every AST node, keyed by node identity (like the
  /// typecheck caches).
  std::map<const ExprNode*, NodeCost> per_node;
};

/// Runs the abstract interpreter. TypeError/NotFound if the expression does
/// not typecheck under `schema` (the analysis piggybacks on inferred types).
Result<CostAnalysis> AnalyzeCost(const Expr& expr, const Schema& schema,
                                 const CostFacts& facts);

// ---------------------------------------------------------------- budgets

/// An admission budget consulted before evaluation. The refusal path is a
/// typed Status (kBudgetExceeded), not an abort: server-shaped deployments
/// turn provably-astronomical queries away instead of dying on them.
struct CostBudget {
  /// Maximum admissible estimated output size (total cardinality) for the
  /// query and every subexpression. Zero means "no limit".
  BigNat max_estimated_size;
  /// kFail refuses over-budget queries; kWarn lets them run (the caller may
  /// surface the diagnostic instead).
  enum class OnExceed { kFail, kWarn };
  OnExceed on_exceed = OnExceed::kFail;
};

/// True iff `bound` provably exceeds a maximum size of `max` (zero = no
/// limit, admitting even astronomical bounds). Unknown bounds never exceed:
/// refusal requires proof. Symbolic (degree >= 1) polynomial bounds never
/// exceed either — they carry no data-level estimate.
bool ExceedsBudget(const SizeBound& bound, const BigNat& max);

/// Statically checks `expr` against the budget using exact facts from `db`.
/// Returns BudgetExceeded when the estimated size exceeds the budget (or is
/// astronomical) and the budget is kFail; increments the "budget.refusals"
/// metric on every refusal. Unknown bounds (unbounded fixpoints) are
/// admitted. Expressions that fail to typecheck are admitted too — the
/// evaluator produces its own (better) error for those.
Status CheckBudget(const Expr& expr, const Database& db,
                   const CostBudget& budget);

/// Adapts a budget into the preflight-hook shape consumed by
/// Evaluator::set_preflight and exec::ExecOptions::preflight.
std::function<Status(const Expr&, const Database&)> MakeBudgetPreflight(
    CostBudget budget);

// ----------------------------------------------------------- explain cost

/// EXPLAIN COST: the explain tree annotated per node with tractability
/// class, polynomial degree, and size bound, e.g.
///
///   prod : {{[U, U]}} [poly deg=2 size<=n^2]
///     input R : {{[U]}} [poly deg=1 size<=n]
///     input R : {{[U]}} [poly deg=1 size<=n]
///
/// Uses exact facts when `facts.db` is bound, symbolic n otherwise.
Result<std::string> ExplainCostExpr(const Expr& expr, const Schema& schema,
                                    const CostFacts& facts);

}  // namespace bagalg::analysis

#endif  // BAGALG_ANALYSIS_STATIC_COST_H_
