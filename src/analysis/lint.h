#ifndef BAGALG_ANALYSIS_LINT_H_
#define BAGALG_ANALYSIS_LINT_H_

/// \file lint.h
/// Query linting: structured diagnostics over the static cost analysis.
///
/// RunLint walks an expression together with its CostAnalysis and emits
/// LintDiags from an extensible rule registry. The built-in rules encode the
/// paper's tractability folklore as actionable warnings:
///
///   W001  powerset-on-unbounded-input — a P/P_b whose operand size is not
///         a static constant: the output is exponential in the data (§3).
///   W002  product-of-products — a × chain of polynomial degree >= the
///         configured threshold: polynomial but practically explosive.
///   W003  subtraction-annihilates — e ∸ e is the empty bag; almost surely
///         a typo for a different operand.
///   W004  rewrite-missed — the optimizer still finds applicable rewrites;
///         the query is running in unoptimized form.
///   W005  powerset-blocks-fusion — a materializing P/P_b feeds a streaming
///         operator, so the fused IR engine cannot lower the plan and falls
///         back to tuple-at-a-time execution.
///   W006  redundant-dup-elim — ε applied to an expression that is already
///         provably duplicate-free (a set-like input or literal, another ε,
///         a powerset, or an operator that preserves dup-freedom). The IR
///         drop-redundant-dup-elim pass removes it at runtime; the query
///         text can drop it too.
///   W007  dead-columns-in-projection — a MAP builds a k-column tuple of
///         which the consuming operator reads only a strict subset. The IR
///         dead-column-elimination pass narrows it at runtime; the source
///         projection can be narrowed too.
///   E001  estimated-output-exceeds-budget — a subexpression's bound
///         provably exceeds the configured CostBudget (the admission check
///         of static_cost.h surfaced as a diagnostic).
///
/// New rules register through LintRuleRegistry (see docs/STATIC_ANALYSIS.md
/// for a worked example).
///
/// Ordering and stability contract (pinned by LintRegistryTest): rules run
/// in registration order, and the built-ins register in the code order
/// above (W001..W007 then E001); re-registering an existing code replaces
/// the rule *in place*, keeping its position. RunLint therefore returns
/// diagnostics grouped by rule in that stable order, and within one rule in
/// the pre-order position of the offending node — diagnostic order is part
/// of the API surface (scripts diff lint output) and must not change when
/// rules are re-registered.

#include <functional>
#include <string>
#include <vector>

#include "src/algebra/database.h"
#include "src/algebra/expr.h"
#include "src/analysis/static_cost.h"
#include "src/util/result.h"

namespace bagalg::analysis {

/// One diagnostic.
struct LintDiag {
  enum class Severity { kWarning, kError };
  Severity severity = Severity::kWarning;
  /// Stable machine-readable code, e.g. "W001".
  std::string code;
  /// Operator path from the root to the offending node, e.g.
  /// "flat > sel > pow".
  std::string span;
  /// Human-readable explanation.
  std::string message;

  /// "W001 [flat > sel > pow] message".
  std::string ToString() const;
};

const char* LintSeverityName(LintDiag::Severity s);

/// Lint configuration.
struct LintOptions {
  /// W002 fires on products whose size bound has degree >= this.
  size_t product_degree_threshold = 3;
  /// When set, E001 checks every subexpression bound against the budget.
  const CostBudget* budget = nullptr;
  /// Increment the "lint.diags.<code>" metrics for emitted diagnostics.
  bool record_metrics = true;
};

/// Everything a rule can see: the expression (as a pre-order node/path
/// list), its cost analysis, and the session facts.
struct LintContext {
  /// Pre-order list of (node, operator path from root).
  struct NodeRef {
    Expr expr;
    std::string path;
  };
  std::vector<NodeRef> nodes;
  const Schema* schema = nullptr;
  const CostFacts* facts = nullptr;
  const CostAnalysis* analysis = nullptr;
  const LintOptions* options = nullptr;

  /// The analysis verdict for a node (nullptr if the analyzer skipped it).
  const NodeCost* CostOf(const Expr& e) const;
};

/// One lint rule: a stable code plus a check emitting diagnostics.
struct LintRule {
  std::string code;
  std::string description;
  std::function<void(const LintContext&, std::vector<LintDiag>*)> check;
};

/// Process-wide rule registry, seeded with the built-in rules above.
/// Register() is not thread-safe; call it during startup.
class LintRuleRegistry {
 public:
  static LintRuleRegistry& Global();

  /// Adds a rule. A rule with the same code replaces the existing one.
  void Register(LintRule rule);
  const std::vector<LintRule>& rules() const { return rules_; }

 private:
  std::vector<LintRule> rules_;
};

/// Runs every registered rule over `expr`. TypeError/NotFound if the
/// expression does not typecheck (the analysis runs first). Diagnostics come
/// back ordered by rule, then pre-order position.
Result<std::vector<LintDiag>> RunLint(const Expr& expr, const Schema& schema,
                                      const CostFacts& facts,
                                      const LintOptions& options = {});

}  // namespace bagalg::analysis

#endif  // BAGALG_ANALYSIS_LINT_H_
