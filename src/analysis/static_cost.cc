#include "src/analysis/static_cost.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "src/algebra/explain.h"
#include "src/algebra/typecheck.h"
#include "src/obs/metrics.h"

namespace bagalg::analysis {

const char* TractabilityName(Tractability t) {
  switch (t) {
    case Tractability::kPolynomial:
      return "poly";
    case Tractability::kExponentialTower:
      return "tower";
  }
  return "?";
}

// ------------------------------------------------------------- SizeBound

SizeBound SizeBound::Finite(Polynomial p) {
  return SizeBound{Kind::kPoly, std::move(p)};
}

SizeBound SizeBound::Constant(BigNat c) {
  return Finite(Polynomial::Constant(BigInt(std::move(c))));
}

SizeBound SizeBound::Astronomical() {
  return SizeBound{Kind::kAstronomical, Polynomial()};
}

SizeBound SizeBound::Unknown() {
  return SizeBound{Kind::kUnknown, Polynomial()};
}

SizeBound SizeBound::Add(const SizeBound& a, const SizeBound& b) {
  if (a.kind == Kind::kUnknown || b.kind == Kind::kUnknown) return Unknown();
  if (a.kind == Kind::kAstronomical || b.kind == Kind::kAstronomical) {
    return Astronomical();
  }
  return Finite(a.poly + b.poly);
}

SizeBound SizeBound::Mul(const SizeBound& a, const SizeBound& b) {
  // A statically-empty factor annihilates even an unbounded one.
  if (a.kind == Kind::kPoly && a.poly.IsZero()) return a;
  if (b.kind == Kind::kPoly && b.poly.IsZero()) return b;
  if (a.kind == Kind::kUnknown || b.kind == Kind::kUnknown) return Unknown();
  if (a.kind == Kind::kAstronomical || b.kind == Kind::kAstronomical) {
    return Astronomical();
  }
  return Finite(a.poly * b.poly);
}

SizeBound SizeBound::Join(const SizeBound& a, const SizeBound& b) {
  if (a.kind == Kind::kUnknown || b.kind == Kind::kUnknown) return Unknown();
  if (a.kind == Kind::kAstronomical || b.kind == Kind::kAstronomical) {
    return Astronomical();
  }
  // Coefficient-wise max dominates both pointwise because every coefficient
  // the analysis produces is non-negative.
  const auto& ca = a.poly.coefficients();
  const auto& cb = b.poly.coefficients();
  std::vector<BigInt> out(std::max(ca.size(), cb.size()));
  for (size_t i = 0; i < out.size(); ++i) {
    BigInt va = i < ca.size() ? ca[i] : BigInt();
    BigInt vb = i < cb.size() ? cb[i] : BigInt();
    out[i] = va >= vb ? va : vb;
  }
  return Finite(Polynomial(std::move(out)));
}

SizeBound SizeBound::Min(const SizeBound& a, const SizeBound& b) {
  // Either operand is a valid upper bound; prefer the informative / smaller.
  if (a.kind == Kind::kUnknown) return b;
  if (b.kind == Kind::kUnknown) return a;
  if (a.kind == Kind::kAstronomical) return b;
  if (b.kind == Kind::kAstronomical) return a;
  if (a.poly.Degree() != b.poly.Degree()) {
    return a.poly.Degree() < b.poly.Degree() ? a : b;
  }
  // Same degree: compare coefficients from the top; the first difference
  // decides which polynomial is eventually smaller.
  const auto& ca = a.poly.coefficients();
  const auto& cb = b.poly.coefficients();
  for (size_t i = ca.size(); i-- > 0;) {
    BigInt va = ca[i];
    BigInt vb = i < cb.size() ? cb[i] : BigInt();
    if (va != vb) return va < vb ? a : b;
  }
  return a;
}

SizeBound SizeBound::Exp2(const SizeBound& a) {
  if (a.kind == Kind::kUnknown) return Unknown();
  if (a.kind == Kind::kAstronomical) return Astronomical();
  if (a.poly.Degree() >= 1) {
    // 2^{poly(n)} with n symbolic and unbounded: beyond any polynomial.
    return Astronomical();
  }
  BigInt c = a.poly.ConstantTerm();
  if (c.IsNegative()) c = BigInt();
  const BigNat& mag = c.magnitude();
  auto as_u64 = mag.ToUint64();
  if (!as_u64.ok() || as_u64.value() >= kAstronomicalBits) {
    return Astronomical();
  }
  return Constant(BigNat::TwoPow(as_u64.value()));
}

std::string SizeBound::ToString() const {
  switch (kind) {
    case Kind::kUnknown:
      return "unbounded";
    case Kind::kAstronomical:
      return "astronomical";
    case Kind::kPoly: {
      // Huge exact constants (powerset towers) are reported by bit length;
      // printing a 300k-digit decimal helps nobody.
      if (poly.Degree() == 0) {
        // Copy, not reference: ConstantTerm() returns a temporary BigInt,
        // and a reference through .magnitude() would dangle past this line.
        const BigNat c = poly.ConstantTerm().magnitude();
        if (c.BitLength() > 64) {
          return "<=2^" + std::to_string(c.BitLength() - 1) + "+";
        }
      }
      return "<=" + poly.ToString();
    }
  }
  return "?";
}

// ----------------------------------------------------------------- shapes

namespace {

/// The abstract object attached to each subexpression, mirroring the type
/// structure: bags carry a cardinality bound plus an element shape; tuples
/// carry field shapes; atoms (and Bottom) carry nothing.
struct Shape {
  enum class Kind { kAtom, kTuple, kBag };
  Kind kind = Kind::kAtom;
  SizeBound card;                       // bags: total-cardinality bound
  std::vector<Shape> fields;            // tuples
  std::shared_ptr<const Shape> element; // bags

  static Shape AtomShape() { return Shape{}; }
  static Shape BagShape(SizeBound c, Shape elem) {
    Shape s;
    s.kind = Kind::kBag;
    s.card = std::move(c);
    s.element = std::make_shared<const Shape>(std::move(elem));
    return s;
  }
  static Shape TupleShape(std::vector<Shape> fs) {
    Shape s;
    s.kind = Kind::kTuple;
    s.fields = std::move(fs);
    return s;
  }

  const Shape& ElementShape() const {
    static const Shape kAtomShape;
    return element != nullptr ? *element : kAtomShape;
  }
};

/// Shape from a static type, with every bag's cardinality set to `card`
/// (symbolic n for inputs, unknown for fixpoint widening).
Shape ShapeFromType(const Type& t, const SizeBound& card) {
  switch (t.kind()) {
    case Type::Kind::kAtom:
    case Type::Kind::kBottom:
      return Shape::AtomShape();
    case Type::Kind::kTuple: {
      std::vector<Shape> fields;
      fields.reserve(t.fields().size());
      for (const Type& f : t.fields()) fields.push_back(ShapeFromType(f, card));
      return Shape::TupleShape(std::move(fields));
    }
    case Type::Kind::kBag:
      return Shape::BagShape(card, ShapeFromType(t.element(), card));
  }
  return Shape::AtomShape();
}

Shape JoinShapes(const Shape& a, const Shape& b);

/// Exact shape of a concrete value: bags carry their true total cardinality
/// and the join of their members' shapes.
Shape ShapeOfValue(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kAtom:
      return Shape::AtomShape();
    case Value::Kind::kTuple: {
      std::vector<Shape> fields;
      fields.reserve(v.fields().size());
      for (const Value& f : v.fields()) fields.push_back(ShapeOfValue(f));
      return Shape::TupleShape(std::move(fields));
    }
    case Value::Kind::kBag: {
      const Bag& bag = v.bag();
      Shape elem = ShapeFromType(bag.element_type(),
                                 SizeBound::Constant(BigNat(0)));
      for (const BagEntry& e : bag.entries()) {
        elem = JoinShapes(elem, ShapeOfValue(e.value));
      }
      return Shape::BagShape(SizeBound::Constant(bag.TotalCount()),
                             std::move(elem));
    }
  }
  return Shape::AtomShape();
}

Shape JoinShapes(const Shape& a, const Shape& b) {
  // Bottom-typed sides materialize as atoms; keep the structured one.
  if (a.kind != b.kind) {
    if (a.kind == Shape::Kind::kAtom) return b;
    if (b.kind == Shape::Kind::kAtom) return a;
    return a;  // tuple/bag mismatch cannot pass the typechecker
  }
  switch (a.kind) {
    case Shape::Kind::kAtom:
      return a;
    case Shape::Kind::kTuple: {
      std::vector<Shape> fields;
      size_t n = std::max(a.fields.size(), b.fields.size());
      fields.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (i >= a.fields.size()) {
          fields.push_back(b.fields[i]);
        } else if (i >= b.fields.size()) {
          fields.push_back(a.fields[i]);
        } else {
          fields.push_back(JoinShapes(a.fields[i], b.fields[i]));
        }
      }
      return Shape::TupleShape(std::move(fields));
    }
    case Shape::Kind::kBag:
      return Shape::BagShape(SizeBound::Join(a.card, b.card),
                             JoinShapes(a.ElementShape(), b.ElementShape()));
  }
  return a;
}

/// The per-node size bound a shape induces: a bag's cardinality bound, the
/// single object for atoms/tuples.
SizeBound BoundOfShape(const Shape& s) {
  if (s.kind == Shape::Kind::kBag) return s.card;
  return SizeBound::Constant(BigNat(1));
}

// ----------------------------------------------------- the abstract walker

struct WalkResult {
  Shape shape;
  int tower = 0;  // max P/P_b nodes on a root-to-leaf path of the subtree
};

class CostWalker {
 public:
  CostWalker(const Schema& schema, const CostFacts& facts,
             const std::map<const ExprNode*, Type>& node_types,
             std::map<const ExprNode*, NodeCost>* out)
      : schema_(schema), facts_(facts), node_types_(node_types), out_(out) {}

  Result<WalkResult> Walk(const Expr& expr) {
    const ExprNode& n = expr.node();
    BAGALG_ASSIGN_OR_RETURN(WalkResult r, WalkNode(expr));
    if (n.kind == ExprKind::kPowerset || n.kind == ExprKind::kPowerbag) {
      r.tower += 1;
    }
    Record(expr.raw(), r);
    return r;
  }

 private:
  /// A conservative shape for nodes whose precise shape the walker cannot
  /// (or need not) track, derived from the inferred static type with every
  /// bag cardinality unknown.
  Shape Widened(const Expr& expr) const {
    auto it = node_types_.find(expr.raw());
    if (it == node_types_.end()) return Shape::AtomShape();
    return ShapeFromType(it->second, SizeBound::Unknown());
  }

  void Record(const ExprNode* node, const WalkResult& r) {
    NodeCost cost;
    cost.tower_height = r.tower;
    cost.cls = r.tower > 0 ? Tractability::kExponentialTower
                           : Tractability::kPolynomial;
    cost.bound = BoundOfShape(r.shape);
    auto [it, inserted] = out_->emplace(node, cost);
    if (!inserted) {
      // Shared subtrees may be revisited under different binder shapes; keep
      // a verdict sound for every occurrence.
      NodeCost& prev = it->second;
      prev.tower_height = std::max(prev.tower_height, cost.tower_height);
      if (cost.cls == Tractability::kExponentialTower) prev.cls = cost.cls;
      prev.bound = SizeBound::Join(prev.bound, cost.bound);
    }
  }

  Result<WalkResult> WalkNode(const Expr& expr) {
    const ExprNode& n = expr.node();
    switch (n.kind) {
      case ExprKind::kInput: {
        if (facts_.db != nullptr) {
          BAGALG_ASSIGN_OR_RETURN(Bag bag, facts_.db->Get(n.name));
          return WalkResult{ShapeOfValue(Value::FromBag(std::move(bag))), 0};
        }
        auto it = schema_.find(n.name);
        if (it == schema_.end()) {
          return Status::NotFound("no input bag named '" + n.name + "'");
        }
        return WalkResult{
            ShapeFromType(it->second,
                          SizeBound::Finite(Polynomial::Identity())),
            0};
      }
      case ExprKind::kConst:
        return WalkResult{ShapeOfValue(*n.literal), 0};
      case ExprKind::kVar: {
        if (n.index >= binders_.size()) {
          return Status::TypeError("unbound variable of depth " +
                                   std::to_string(n.index));
        }
        return WalkResult{binders_[binders_.size() - 1 - n.index], 0};
      }
      case ExprKind::kAdditiveUnion:
      case ExprKind::kMaxUnion: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult a, Walk(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(WalkResult b, Walk(n.children[1]));
        // Both ⊎ and ∪ are dominated by the sum of the operand totals.
        Shape s = Shape::BagShape(
            SizeBound::Add(a.shape.card, b.shape.card),
            JoinShapes(a.shape.ElementShape(), b.shape.ElementShape()));
        return WalkResult{std::move(s), std::max(a.tower, b.tower)};
      }
      case ExprKind::kSubtract: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult a, Walk(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(WalkResult b, Walk(n.children[1]));
        // Monus only removes occurrences: bounded by the left operand.
        return WalkResult{a.shape, std::max(a.tower, b.tower)};
      }
      case ExprKind::kIntersect: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult a, Walk(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(WalkResult b, Walk(n.children[1]));
        Shape s = Shape::BagShape(
            SizeBound::Min(a.shape.card, b.shape.card),
            JoinShapes(a.shape.ElementShape(), b.shape.ElementShape()));
        return WalkResult{std::move(s), std::max(a.tower, b.tower)};
      }
      case ExprKind::kProduct: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult a, Walk(n.children[0]));
        BAGALG_ASSIGN_OR_RETURN(WalkResult b, Walk(n.children[1]));
        const Shape& ea = a.shape.ElementShape();
        const Shape& eb = b.shape.ElementShape();
        std::vector<Shape> fields = ea.fields;
        fields.insert(fields.end(), eb.fields.begin(), eb.fields.end());
        Shape s = Shape::BagShape(SizeBound::Mul(a.shape.card, b.shape.card),
                                  Shape::TupleShape(std::move(fields)));
        return WalkResult{std::move(s), std::max(a.tower, b.tower)};
      }
      case ExprKind::kTupling: {
        std::vector<Shape> fields;
        fields.reserve(n.children.size());
        int tower = 0;
        for (const Expr& c : n.children) {
          BAGALG_ASSIGN_OR_RETURN(WalkResult f, Walk(c));
          tower = std::max(tower, f.tower);
          fields.push_back(std::move(f.shape));
        }
        return WalkResult{Shape::TupleShape(std::move(fields)), tower};
      }
      case ExprKind::kBagging: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult o, Walk(n.children[0]));
        return WalkResult{
            Shape::BagShape(SizeBound::Constant(BigNat(1)),
                            std::move(o.shape)),
            o.tower};
      }
      case ExprKind::kPowerset:
      case ExprKind::kPowerbag: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult o, Walk(n.children[0]));
        // |P(B)| = Π(c_i + 1) and |P_b(B)| = Π 2^{c_i}, both <= 2^{|B|};
        // every subbag's own total is <= |B|.
        Shape subbag = Shape::BagShape(o.shape.card, o.shape.ElementShape());
        Shape s = Shape::BagShape(SizeBound::Exp2(o.shape.card),
                                  std::move(subbag));
        return WalkResult{std::move(s), o.tower};  // +1 added by Walk
      }
      case ExprKind::kBagDestroy: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult o, Walk(n.children[0]));
        const Shape& inner = o.shape.ElementShape();
        // |δ(B)| = Σ mult(b)·|b| <= |B| · max inner size.
        Shape s = Shape::BagShape(SizeBound::Mul(o.shape.card, inner.card),
                                  inner.ElementShape());
        return WalkResult{std::move(s), o.tower};
      }
      case ExprKind::kDupElim: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult o, Walk(n.children[0]));
        return o;  // |ε(B)| <= |B|, same elements
      }
      case ExprKind::kAttrProj: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult o, Walk(n.children[0]));
        if (o.shape.kind == Shape::Kind::kTuple && n.index >= 1 &&
            n.index <= o.shape.fields.size()) {
          return WalkResult{o.shape.fields[n.index - 1], o.tower};
        }
        return WalkResult{Widened(expr), o.tower};
      }
      case ExprKind::kMap: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult src, Walk(n.children[1]));
        binders_.push_back(src.shape.ElementShape());
        auto body = Walk(n.children[0]);
        binders_.pop_back();
        BAGALG_RETURN_IF_ERROR(body.status());
        // MAP preserves total cardinality exactly.
        Shape s = Shape::BagShape(src.shape.card,
                                  std::move(body.value().shape));
        return WalkResult{std::move(s),
                          std::max(src.tower, body.value().tower)};
      }
      case ExprKind::kSelect: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult src, Walk(n.children[2]));
        binders_.push_back(src.shape.ElementShape());
        auto lhs = Walk(n.children[0]);
        auto rhs = lhs.ok() ? Walk(n.children[1]) : lhs;
        binders_.pop_back();
        BAGALG_RETURN_IF_ERROR(lhs.status());
        BAGALG_RETURN_IF_ERROR(rhs.status());
        int tower = std::max({src.tower, lhs.value().tower,
                              rhs.value().tower});
        return WalkResult{src.shape, tower};  // σ only filters
      }
      case ExprKind::kNest: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult src, Walk(n.children[0]));
        const Shape& elem = src.shape.ElementShape();
        if (elem.kind != Shape::Kind::kTuple) {
          return WalkResult{Widened(expr), src.tower};
        }
        std::vector<bool> nested(elem.fields.size(), false);
        for (size_t a : n.attrs) {
          if (a >= 1 && a <= elem.fields.size()) nested[a - 1] = true;
        }
        std::vector<Shape> key;
        std::vector<Shape> group;
        for (size_t i = 0; i < elem.fields.size(); ++i) {
          (nested[i] ? group : key).push_back(elem.fields[i]);
        }
        // Each group bag is a sub-multiset of the source rows.
        key.push_back(Shape::BagShape(src.shape.card,
                                      Shape::TupleShape(std::move(group))));
        Shape s = Shape::BagShape(src.shape.card,
                                  Shape::TupleShape(std::move(key)));
        return WalkResult{std::move(s), src.tower};
      }
      case ExprKind::kUnnest: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult src, Walk(n.children[0]));
        const Shape& elem = src.shape.ElementShape();
        size_t a = n.attrs.empty() ? 0 : n.attrs[0];
        if (elem.kind != Shape::Kind::kTuple || a < 1 ||
            a > elem.fields.size() ||
            elem.fields[a - 1].kind != Shape::Kind::kBag) {
          return WalkResult{Widened(expr), src.tower};
        }
        const Shape& inner = elem.fields[a - 1];
        std::vector<Shape> fields = elem.fields;
        fields[a - 1] = inner.ElementShape();
        Shape s = Shape::BagShape(
            SizeBound::Mul(src.shape.card, inner.card),
            Shape::TupleShape(std::move(fields)));
        return WalkResult{std::move(s), src.tower};
      }
      case ExprKind::kIfp:
      case ExprKind::kBoundedIfp: {
        BAGALG_ASSIGN_OR_RETURN(WalkResult seed, Walk(n.children[1]));
        int tower = seed.tower;
        WalkResult bound;
        if (n.kind == ExprKind::kBoundedIfp) {
          BAGALG_ASSIGN_OR_RETURN(bound, Walk(n.children[2]));
          tower = std::max(tower, bound.tower);
        }
        // Widen the iterate: its cardinality is not statically bounded, so
        // the body is analyzed against an unknown-size binder.
        binders_.push_back(Widened(expr));
        auto body = Walk(n.children[0]);
        binders_.pop_back();
        BAGALG_RETURN_IF_ERROR(body.status());
        tower = std::max(tower, body.value().tower);
        if (n.kind == ExprKind::kBoundedIfp) {
          // Every iterate (and hence the result) is ∩-clamped to the bound.
          return WalkResult{bound.shape, tower};
        }
        return WalkResult{Widened(expr), tower};
      }
    }
    return Status::Internal("unhandled expression kind in cost analysis");
  }

  const Schema& schema_;
  const CostFacts& facts_;
  const std::map<const ExprNode*, Type>& node_types_;
  std::map<const ExprNode*, NodeCost>* out_;
  std::vector<Shape> binders_;
};

}  // namespace

Result<CostAnalysis> AnalyzeCost(const Expr& expr, const Schema& schema,
                                 const CostFacts& facts) {
  // Typecheck first: the walker leans on well-typedness and the node types
  // drive fixpoint widening.
  std::map<const ExprNode*, Type> node_types;
  BAGALG_RETURN_IF_ERROR(AnalyzeExpr(expr, schema, &node_types).status());
  CostAnalysis analysis;
  CostWalker walker(schema, facts, node_types, &analysis.per_node);
  BAGALG_ASSIGN_OR_RETURN(WalkResult root, walker.Walk(expr));
  auto it = analysis.per_node.find(expr.raw());
  analysis.root = it != analysis.per_node.end()
                      ? it->second
                      : NodeCost{root.tower > 0
                                     ? Tractability::kExponentialTower
                                     : Tractability::kPolynomial,
                                 root.tower, SizeBound::Unknown()};
  return analysis;
}

// ---------------------------------------------------------------- budgets

namespace {

/// Pre-order traversal handing each node its operator path from the root,
/// e.g. "flat > sel > pow".
void VisitPaths(const Expr& expr, const std::string& prefix,
                const std::function<void(const Expr&, const std::string&)>&
                    visit) {
  std::string path = prefix.empty()
                         ? std::string(ExprKindName(expr->kind))
                         : prefix + " > " + ExprKindName(expr->kind);
  visit(expr, path);
  for (const Expr& c : expr->children) VisitPaths(c, path, visit);
}

}  // namespace

bool ExceedsBudget(const SizeBound& bound, const BigNat& max) {
  if (max.IsZero()) return false;
  switch (bound.kind) {
    case SizeBound::Kind::kUnknown:
      return false;
    case SizeBound::Kind::kAstronomical:
      return true;  // >= 2^2^20 exceeds any expressible budget
    case SizeBound::Kind::kPoly: {
      if (bound.poly.Degree() != 0) return false;  // symbolic: data-free
      BigInt c = bound.poly.ConstantTerm();
      return !c.IsNegative() && c.magnitude() > max;
    }
  }
  return false;
}

Status CheckBudget(const Expr& expr, const Database& db,
                   const CostBudget& budget) {
  auto analysis = AnalyzeCost(expr, db.schema(), CostFacts::Exact(db));
  // Ill-typed queries are admitted: evaluation produces the real error.
  if (!analysis.ok()) return Status::Ok();
  std::string offending_path;
  SizeBound offending;
  VisitPaths(expr, "", [&](const Expr& e, const std::string& path) {
    if (!offending_path.empty()) return;
    auto it = analysis->per_node.find(e.raw());
    if (it == analysis->per_node.end()) return;
    if (ExceedsBudget(it->second.bound, budget.max_estimated_size)) {
      offending_path = path;
      offending = it->second.bound;
    }
  });
  if (offending_path.empty()) return Status::Ok();
  std::string detail = "estimated output size " + offending.ToString() +
                       " at [" + offending_path + "] exceeds budget " +
                       budget.max_estimated_size.ToString();
  // Counted twice on purpose: `budget.*` is the original (back-compat)
  // family, `governor.preflight.*` folds admission-time refusals into the
  // governor family so static refusals and runtime trips are countable in
  // one place (static refuses what it can prove; the governor stops the
  // rest — see docs/ROBUSTNESS.md).
  if (budget.on_exceed == CostBudget::OnExceed::kWarn) {
    obs::GlobalMetrics().GetCounter("budget.warnings")->Increment();
    obs::GlobalMetrics().GetCounter("governor.preflight.warnings")->Increment();
    return Status::Ok();
  }
  obs::GlobalMetrics().GetCounter("budget.refusals")->Increment();
  obs::GlobalMetrics().GetCounter("governor.preflight.refusals")->Increment();
  return Status::BudgetExceeded(detail);
}

std::function<Status(const Expr&, const Database&)> MakeBudgetPreflight(
    CostBudget budget) {
  return [budget](const Expr& expr, const Database& db) {
    return CheckBudget(expr, db, budget);
  };
}

// ----------------------------------------------------------- explain cost

Result<std::string> ExplainCostExpr(const Expr& expr, const Schema& schema,
                                    const CostFacts& facts) {
  // Class and degree come from the symbolic analysis; a bound Database
  // additionally yields concrete estimates.
  BAGALG_ASSIGN_OR_RETURN(CostAnalysis symbolic,
                          AnalyzeCost(expr, schema, CostFacts::Symbolic()));
  CostAnalysis exact;
  bool have_exact = false;
  if (facts.db != nullptr) {
    auto r = AnalyzeCost(expr, schema, facts);
    if (r.ok()) {
      exact = std::move(r).value();
      have_exact = true;
    }
  }
  auto annotate = [&](const ExprNode* node) -> std::string {
    auto it = symbolic.per_node.find(node);
    if (it == symbolic.per_node.end()) return std::string();
    const NodeCost& c = it->second;
    std::ostringstream os;
    os << " [" << TractabilityName(c.cls);
    if (c.cls == Tractability::kExponentialTower) {
      os << " h=" << c.tower_height;
    } else if (c.bound.IsFinite()) {
      os << " deg=" << c.degree();
    }
    os << " size" << (c.bound.IsFinite() ? "" : "=")
       << c.bound.ToString();
    if (have_exact) {
      auto eit = exact.per_node.find(node);
      if (eit != exact.per_node.end()) {
        os << " est" << (eit->second.bound.IsFinite() ? "" : "=")
           << eit->second.bound.ToString();
      }
    }
    os << "]";
    return os.str();
  };
  return ExplainExprAnnotated(expr, schema, annotate);
}

}  // namespace bagalg::analysis
