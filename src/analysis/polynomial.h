#ifndef BAGALG_ANALYSIS_POLYNOMIAL_H_
#define BAGALG_ANALYSIS_POLYNOMIAL_H_

/// \file polynomial.h
/// Integer polynomials in one variable.
///
/// The Proposition 4.1 claim attaches to every BALG¹ expression e and tuple
/// t a polynomial P_t with: for all large enough n, the count of t in
/// e(B_n) equals P_t(n), where B_n holds n copies of [a]. This module
/// provides the polynomial arithmetic the abstract interpreter needs, plus
/// the sequence tools (finite differences) used to check empirically that a
/// count function is — or, for bag-even, is *not* — eventually polynomial.

#include <string>
#include <vector>

#include "src/util/bigint.h"
#include "src/util/bignat.h"

namespace bagalg::analysis {

/// A polynomial with BigInt coefficients, coefficient i multiplying n^i.
/// Normalized: no trailing zero coefficients; the zero polynomial has no
/// coefficients.
class Polynomial {
 public:
  /// The zero polynomial.
  Polynomial() = default;
  /// From low-to-high coefficients.
  explicit Polynomial(std::vector<BigInt> coeffs);
  /// The constant c.
  static Polynomial Constant(BigInt c);
  /// The monomial c·n^k.
  static Polynomial Monomial(BigInt c, size_t k);
  /// The identity polynomial n.
  static Polynomial Identity();

  bool IsZero() const { return coeffs_.empty(); }
  /// Degree; 0 for constants and for the zero polynomial.
  size_t Degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }
  const std::vector<BigInt>& coefficients() const { return coeffs_; }
  /// Leading coefficient (zero for the zero polynomial).
  BigInt LeadingCoefficient() const;
  /// The constant term k0 (the coefficient Prop 4.1 tracks: k0 = 0 for
  /// tuples containing the fresh constant a).
  BigInt ConstantTerm() const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  bool operator==(const Polynomial& o) const { return coeffs_ == o.coeffs_; }
  bool operator!=(const Polynomial& o) const { return !(*this == o); }

  /// Evaluates at the natural number n (Horner).
  BigInt Eval(const BigNat& n) const;

  /// True iff P(n) > 0 for all sufficiently large n.
  bool EventuallyPositive() const;
  /// True iff P(n) >= 0 for all sufficiently large n (zero counts).
  bool EventuallyNonNegative() const;

  /// An upper bound B such that P has no sign changes beyond B (Cauchy root
  /// bound, rounded up). Returns 0 for constants.
  BigNat RootBound() const;

  /// The least N such that the predicate "P(n) > 0" is constant for all
  /// n >= N (either always true or always false there).
  BigNat StablePositivityPoint() const;

  /// Rendering, e.g. "2n^2 + n - 3".
  std::string ToString() const;

 private:
  std::vector<BigInt> coeffs_;
};

/// Checks whether the integer sequence values[0..] (samples of f at
/// consecutive arguments) agrees with some polynomial of degree <= degree:
/// true iff the (degree+1)-th finite differences all vanish. Requires
/// values.size() >= degree + 2.
bool IsPolynomialSequence(const std::vector<BigInt>& values, size_t degree);

}  // namespace bagalg::analysis

#endif  // BAGALG_ANALYSIS_POLYNOMIAL_H_
