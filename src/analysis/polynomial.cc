#include "src/analysis/polynomial.h"

#include <sstream>

namespace bagalg::analysis {

namespace {

void Normalize(std::vector<BigInt>* coeffs) {
  while (!coeffs->empty() && coeffs->back().IsZero()) coeffs->pop_back();
}

}  // namespace

Polynomial::Polynomial(std::vector<BigInt> coeffs)
    : coeffs_(std::move(coeffs)) {
  Normalize(&coeffs_);
}

Polynomial Polynomial::Constant(BigInt c) {
  return Polynomial(std::vector<BigInt>{std::move(c)});
}

Polynomial Polynomial::Monomial(BigInt c, size_t k) {
  std::vector<BigInt> coeffs(k + 1, BigInt(0));
  coeffs[k] = std::move(c);
  return Polynomial(std::move(coeffs));
}

Polynomial Polynomial::Identity() { return Monomial(BigInt(1), 1); }

BigInt Polynomial::LeadingCoefficient() const {
  return coeffs_.empty() ? BigInt(0) : coeffs_.back();
}

BigInt Polynomial::ConstantTerm() const {
  return coeffs_.empty() ? BigInt(0) : coeffs_.front();
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  std::vector<BigInt> out(std::max(coeffs_.size(), other.coeffs_.size()),
                          BigInt(0));
  for (size_t i = 0; i < coeffs_.size(); ++i) out[i] += coeffs_[i];
  for (size_t i = 0; i < other.coeffs_.size(); ++i) out[i] += other.coeffs_[i];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  std::vector<BigInt> out(std::max(coeffs_.size(), other.coeffs_.size()),
                          BigInt(0));
  for (size_t i = 0; i < coeffs_.size(); ++i) out[i] += coeffs_[i];
  for (size_t i = 0; i < other.coeffs_.size(); ++i) out[i] -= other.coeffs_[i];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  if (IsZero() || other.IsZero()) return Polynomial();
  std::vector<BigInt> out(coeffs_.size() + other.coeffs_.size() - 1,
                          BigInt(0));
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    for (size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  return Polynomial(std::move(out));
}

BigInt Polynomial::Eval(const BigNat& n) const {
  BigInt acc(0);
  BigInt x(n);
  for (size_t i = coeffs_.size(); i-- > 0;) {
    acc = acc * x + coeffs_[i];
  }
  return acc;
}

bool Polynomial::EventuallyPositive() const {
  return LeadingCoefficient().IsPositive();
}

bool Polynomial::EventuallyNonNegative() const {
  return IsZero() || LeadingCoefficient().IsPositive();
}

BigNat Polynomial::RootBound() const {
  if (coeffs_.size() <= 1) return BigNat(0);
  // Cauchy: all real roots lie within 1 + max |c_i| / |c_lead|. Integer
  // over-approximation: 2 + max|c_i| (since |c_lead| >= 1 for integers).
  BigNat max_mag;
  for (const BigInt& c : coeffs_) {
    if (c.magnitude() > max_mag) max_mag = c.magnitude();
  }
  return max_mag + BigNat(2);
}

BigNat Polynomial::StablePositivityPoint() const {
  if (IsZero()) return BigNat(0);
  // Beyond the root bound the sign equals the leading coefficient's sign;
  // walk backwards from the bound to find the earliest stable point.
  BigNat bound = RootBound();
  bool sign_at_infinity = LeadingCoefficient().IsPositive();
  BigNat n = bound;
  while (!n.IsZero()) {
    BigNat prev = n.MonusSub(BigNat(1));
    bool positive = Eval(prev).IsPositive();
    if (positive != sign_at_infinity) return n;
    n = std::move(prev);
  }
  return BigNat(0);
}

std::string Polynomial::ToString() const {
  if (coeffs_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    const BigInt& c = coeffs_[i];
    if (c.IsZero()) continue;
    if (!first) os << (c.IsNegative() ? " - " : " + ");
    if (first && c.IsNegative()) os << "-";
    first = false;
    BigNat mag = c.magnitude();
    if (!mag.IsOne() || i == 0) os << mag.ToString();
    if (i >= 1) os << "n";
    if (i >= 2) os << "^" << i;
  }
  return os.str();
}

bool IsPolynomialSequence(const std::vector<BigInt>& values, size_t degree) {
  if (values.size() < degree + 2) return false;
  std::vector<BigInt> diff = values;
  for (size_t round = 0; round <= degree; ++round) {
    for (size_t i = 0; i + 1 < diff.size(); ++i) {
      diff[i] = diff[i + 1] - diff[i];
    }
    diff.pop_back();
  }
  for (const BigInt& d : diff) {
    if (!d.IsZero()) return false;
  }
  return true;
}

}  // namespace bagalg::analysis
