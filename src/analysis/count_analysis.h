#ifndef BAGALG_ANALYSIS_COUNT_ANALYSIS_H_
#define BAGALG_ANALYSIS_COUNT_ANALYSIS_H_

/// \file count_analysis.h
/// The Proposition 4.1 abstract interpreter.
///
/// The paper's inexpressibility proofs for BALG¹ (Prop 4.1: ε and − are not
/// derivable without nesting; Prop 4.5: bag-even is not expressible) rest
/// on a claim: for every BALG¹ expression e and tuple t there are N_t and a
/// polynomial P_t with integer coefficients such that for every n > N_t,
/// the number of occurrences of t in e(B_n) equals P_t(n), where B_n holds
/// exactly n copies of the tuple [a]. Moreover k0 = 0 whenever t mentions a.
///
/// AnalyzeCounts executes that induction as an abstract interpretation,
/// returning the (P_t, N_t) map. The test suite validates it against the
/// concrete evaluator — a mechanized check of the paper's central lemma —
/// and the bench uses it to show bag-even's count function violates the
/// polynomial abstraction (Prop 4.5).

#include <map>
#include <string>

#include "src/algebra/expr.h"
#include "src/analysis/polynomial.h"
#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg::analysis {

/// The count abstraction of one tuple: its count in e(B_n) equals
/// poly(n) for every n >= valid_from.
struct CountFunction {
  Polynomial poly;
  BigNat valid_from;
};

/// Counts for every tuple with a nonzero polynomial (absent = identically
/// zero beyond its N).
struct CountAnalysis {
  std::map<Value, CountFunction> counts;

  /// A floor below which even *untracked* tuples (identically zero beyond
  /// their N) may disagree with their zero default — raised whenever a
  /// monus or ε step eliminates a tuple.
  BigNat zero_floor;

  /// Lookup with a zero default.
  CountFunction CountOf(const Value& t) const;

  /// The max valid_from across all tracked tuples and the zero floor
  /// (a uniform N for the whole expression).
  BigNat UniformValidFrom() const;
};

/// Runs the Prop 4.1 induction on `e` over the input family
/// B_n = n · [a_atom] bound to the input name `input_name`.
///
/// Supported operators: the claim's grammar — ⊎, −, ×, MAP, σ, plus β of a
/// closed object, bag constants — together with ∪ and ∩ (expanded through
/// the §3 monus identities) and ε (the extra induction step of Prop 4.5).
/// Anything else (P, δ, fixpoints, other inputs) is Unsupported.
Result<CountAnalysis> AnalyzeCounts(const Expr& e,
                                    const std::string& input_name,
                                    const Value& a_atom);

}  // namespace bagalg::analysis

#endif  // BAGALG_ANALYSIS_COUNT_ANALYSIS_H_
