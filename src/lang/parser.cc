#include "src/lang/parser.h"

#include <unordered_map>
#include <vector>

#include "src/algebra/builder.h"
#include "src/lang/lexer.h"
#include "src/util/bignat.h"

namespace bagalg::lang {

namespace {

const std::unordered_map<std::string_view, ExprKind>& KeywordMap() {
  static const auto* map = new std::unordered_map<std::string_view, ExprKind>{
      {"uplus", ExprKind::kAdditiveUnion},
      {"monus", ExprKind::kSubtract},
      {"umax", ExprKind::kMaxUnion},
      {"inter", ExprKind::kIntersect},
      {"prod", ExprKind::kProduct},
      {"tup", ExprKind::kTupling},
      {"bag", ExprKind::kBagging},
      {"proj", ExprKind::kAttrProj},
      {"pow", ExprKind::kPowerset},
      {"powbag", ExprKind::kPowerbag},
      {"flat", ExprKind::kBagDestroy},
      {"dedup", ExprKind::kDupElim},
      {"map", ExprKind::kMap},
      {"sel", ExprKind::kSelect},
      {"nest", ExprKind::kNest},
      {"unnest", ExprKind::kUnnest},
      {"ifp", ExprKind::kIfp},
      {"bifp", ExprKind::kBoundedIfp},
  };
  return *map;
}

/// Shared cursor over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, AtomTable* table)
      : tokens_(std::move(tokens)),
        table_(table != nullptr ? table : &GlobalAtomTable()) {}

  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[pos_++]; }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Status::ParseError(std::string("expected ") +
                                TokenKindName(kind) + " but found " +
                                TokenKindName(Peek().kind) + " at offset " +
                                std::to_string(Peek().offset));
    }
    ++pos_;
    return Status::Ok();
  }

  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status AtEnd() {
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(Peek().offset));
    }
    return Status::Ok();
  }

  // --------------------------------------------------------------- values

  Result<Value> ParseValue() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIdent:
      case TokenKind::kNumber: {
        Token tok = Next();
        return Value::Atom(table_->Intern(tok.text));
      }
      case TokenKind::kLBracket: {
        Next();
        std::vector<Value> fields;
        if (!Accept(TokenKind::kRBracket)) {
          while (true) {
            BAGALG_ASSIGN_OR_RETURN(Value v, ParseValue());
            fields.push_back(std::move(v));
            if (Accept(TokenKind::kRBracket)) break;
            BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        return Value::Tuple(std::move(fields));
      }
      case TokenKind::kLBagBrace: {
        Next();
        Bag::Builder builder;
        if (!Accept(TokenKind::kRBagBrace)) {
          while (true) {
            BAGALG_ASSIGN_OR_RETURN(Value v, ParseValue());
            Mult count(1);
            if (Accept(TokenKind::kStar)) {
              if (Peek().kind != TokenKind::kNumber) {
                return Status::ParseError(
                    "expected a multiplicity after '*' at offset " +
                    std::to_string(Peek().offset));
              }
              BAGALG_ASSIGN_OR_RETURN(count, BigNat::FromDecimal(Next().text));
            }
            builder.Add(std::move(v), std::move(count));
            if (Accept(TokenKind::kRBagBrace)) break;
            BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        BAGALG_ASSIGN_OR_RETURN(Bag bag, std::move(builder).Build());
        return Value::FromBag(std::move(bag));
      }
      default:
        return Status::ParseError("expected a value at offset " +
                                  std::to_string(t.offset) + ", found " +
                                  TokenKindName(t.kind));
    }
  }

  // ---------------------------------------------------------------- types

  Result<Type> ParseType() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kIdent && t.text == "U") {
      Next();
      return Type::Atom();
    }
    if (t.kind == TokenKind::kUnderscore) {
      Next();
      return Type::Bottom();
    }
    if (t.kind == TokenKind::kLBracket) {
      Next();
      std::vector<Type> fields;
      if (!Accept(TokenKind::kRBracket)) {
        while (true) {
          BAGALG_ASSIGN_OR_RETURN(Type f, ParseType());
          fields.push_back(std::move(f));
          if (Accept(TokenKind::kRBracket)) break;
          BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        }
      }
      return Type::Tuple(std::move(fields));
    }
    if (t.kind == TokenKind::kLBagBrace) {
      Next();
      BAGALG_ASSIGN_OR_RETURN(Type elem, ParseType());
      BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kRBagBrace));
      return Type::Bag(std::move(elem));
    }
    return Status::ParseError("expected a type at offset " +
                              std::to_string(t.offset));
  }

  // ---------------------------------------------------------- expressions

  Result<Expr> ParseExpr() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kQuote) {
      Next();
      BAGALG_ASSIGN_OR_RETURN(Value v, ParseValue());
      return ConstExpr(std::move(v));
    }
    if (t.kind != TokenKind::kIdent) {
      return Status::ParseError("expected an expression at offset " +
                                std::to_string(t.offset) + ", found " +
                                TokenKindName(t.kind));
    }
    Token name = Next();
    auto kw = KeywordMap().find(name.text);
    if (kw != KeywordMap().end() && Peek().kind == TokenKind::kLParen) {
      return ParseOperator(kw->second, name);
    }
    // A bound variable, innermost binding wins; otherwise an input bag.
    for (size_t i = vars_.size(); i-- > 0;) {
      if (vars_[i] == name.text) {
        return Var(vars_.size() - 1 - i);
      }
    }
    if (kw != KeywordMap().end()) {
      return Status::ParseError("reserved word '" + name.text +
                                "' cannot name an input bag (offset " +
                                std::to_string(name.offset) + ")");
    }
    return Input(name.text);
  }

 private:
  Result<size_t> ParseAttrNumber() {
    if (Peek().kind != TokenKind::kNumber) {
      return Status::ParseError("expected an attribute number at offset " +
                                std::to_string(Peek().offset));
    }
    Token tok = Next();
    BAGALG_ASSIGN_OR_RETURN(BigNat n, BigNat::FromDecimal(tok.text));
    BAGALG_ASSIGN_OR_RETURN(uint64_t v, n.ToUint64());
    if (v == 0) {
      return Status::ParseError("attribute numbers are 1-based (offset " +
                                std::to_string(tok.offset) + ")");
    }
    return static_cast<size_t>(v);
  }

  Result<std::string> ParseBinderName() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError("expected a variable name at offset " +
                                std::to_string(Peek().offset));
    }
    Token tok = Next();
    if (KeywordMap().count(tok.text) != 0) {
      return Status::ParseError("reserved word '" + tok.text +
                                "' cannot be a variable (offset " +
                                std::to_string(tok.offset) + ")");
    }
    BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    return tok.text;
  }

  Result<Expr> ParseOperator(ExprKind kind, const Token& name) {
    BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    switch (kind) {
      case ExprKind::kAdditiveUnion:
      case ExprKind::kSubtract:
      case ExprKind::kMaxUnion:
      case ExprKind::kIntersect:
      case ExprKind::kProduct: {
        BAGALG_ASSIGN_OR_RETURN(Expr a, ParseExpr());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        BAGALG_ASSIGN_OR_RETURN(Expr b, ParseExpr());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        switch (kind) {
          case ExprKind::kAdditiveUnion:
            return Uplus(std::move(a), std::move(b));
          case ExprKind::kSubtract:
            return Monus(std::move(a), std::move(b));
          case ExprKind::kMaxUnion:
            return Umax(std::move(a), std::move(b));
          case ExprKind::kIntersect:
            return Inter(std::move(a), std::move(b));
          default:
            return Product(std::move(a), std::move(b));
        }
      }
      case ExprKind::kTupling: {
        std::vector<Expr> fields;
        if (!Accept(TokenKind::kRParen)) {
          while (true) {
            BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr());
            fields.push_back(std::move(e));
            if (Accept(TokenKind::kRParen)) break;
            BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        return Tup(std::move(fields));
      }
      case ExprKind::kBagging:
      case ExprKind::kPowerset:
      case ExprKind::kPowerbag:
      case ExprKind::kBagDestroy:
      case ExprKind::kDupElim: {
        BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        switch (kind) {
          case ExprKind::kBagging:
            return Beta(std::move(e));
          case ExprKind::kPowerset:
            return Pow(std::move(e));
          case ExprKind::kPowerbag:
            return Powbag(std::move(e));
          case ExprKind::kBagDestroy:
            return Destroy(std::move(e));
          default:
            return Eps(std::move(e));
        }
      }
      case ExprKind::kAttrProj: {
        BAGALG_ASSIGN_OR_RETURN(size_t attr, ParseAttrNumber());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return Proj(std::move(e), attr);
      }
      case ExprKind::kMap: {
        BAGALG_ASSIGN_OR_RETURN(std::string var, ParseBinderName());
        vars_.push_back(var);
        auto body = ParseExpr();
        vars_.pop_back();
        BAGALG_RETURN_IF_ERROR(body.status());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        BAGALG_ASSIGN_OR_RETURN(Expr src, ParseExpr());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return Map(std::move(body).value(), std::move(src));
      }
      case ExprKind::kSelect: {
        BAGALG_ASSIGN_OR_RETURN(std::string var, ParseBinderName());
        vars_.push_back(var);
        auto lhs = ParseExpr();
        if (!lhs.ok()) {
          vars_.pop_back();
          return lhs.status();
        }
        Status eq = Expect(TokenKind::kEqEq);
        if (!eq.ok()) {
          vars_.pop_back();
          return eq;
        }
        auto rhs = ParseExpr();
        vars_.pop_back();
        BAGALG_RETURN_IF_ERROR(rhs.status());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        BAGALG_ASSIGN_OR_RETURN(Expr src, ParseExpr());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return Select(std::move(lhs).value(), std::move(rhs).value(),
                      std::move(src));
      }
      case ExprKind::kNest:
      case ExprKind::kUnnest: {
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
        std::vector<size_t> attrs;
        if (!Accept(TokenKind::kRBracket)) {
          while (true) {
            BAGALG_ASSIGN_OR_RETURN(size_t a, ParseAttrNumber());
            attrs.push_back(a);
            if (Accept(TokenKind::kRBracket)) break;
            BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
          }
        }
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        if (kind == ExprKind::kNest) {
          return NestExpr(std::move(e), std::move(attrs));
        }
        if (attrs.size() != 1) {
          return Status::ParseError(
              "unnest takes exactly one attribute (offset " +
              std::to_string(name.offset) + ")");
        }
        return UnnestExpr(std::move(e), attrs[0]);
      }
      case ExprKind::kIfp:
      case ExprKind::kBoundedIfp: {
        BAGALG_ASSIGN_OR_RETURN(std::string var, ParseBinderName());
        vars_.push_back(var);
        auto body = ParseExpr();
        vars_.pop_back();
        BAGALG_RETURN_IF_ERROR(body.status());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        BAGALG_ASSIGN_OR_RETURN(Expr seed, ParseExpr());
        if (kind == ExprKind::kIfp) {
          BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          return Ifp(std::move(body).value(), std::move(seed));
        }
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        BAGALG_ASSIGN_OR_RETURN(Expr bound, ParseExpr());
        BAGALG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return BoundedIfp(std::move(body).value(), std::move(seed),
                          std::move(bound));
      }
      default:
        return Status::Internal("unhandled operator keyword");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  AtomTable* table_;
  std::vector<std::string> vars_;
};

}  // namespace

bool IsReservedWord(std::string_view name) {
  return KeywordMap().count(name) != 0;
}

Result<Value> ParseValue(std::string_view text, AtomTable* table) {
  BAGALG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), table);
  BAGALG_ASSIGN_OR_RETURN(Value v, parser.ParseValue());
  BAGALG_RETURN_IF_ERROR(parser.AtEnd());
  return v;
}

Result<Type> ParseType(std::string_view text) {
  BAGALG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), nullptr);
  BAGALG_ASSIGN_OR_RETURN(Type t, parser.ParseType());
  BAGALG_RETURN_IF_ERROR(parser.AtEnd());
  return t;
}

Result<Expr> ParseExpr(std::string_view text, AtomTable* table) {
  BAGALG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), table);
  BAGALG_ASSIGN_OR_RETURN(Expr e, parser.ParseExpr());
  BAGALG_RETURN_IF_ERROR(parser.AtEnd());
  return e;
}

}  // namespace bagalg::lang
