#include "src/lang/script.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/algebra/explain.h"
#include "src/algebra/rewrite.h"
#include "src/algebra/typecheck.h"
#include "src/analysis/lint.h"
#include "src/analysis/static_cost.h"
#include "src/exec/compile.h"
#include "src/ir/lower.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"
#include "src/util/build_info.h"
#include "src/util/strings.h"

namespace bagalg::lang {

namespace {

/// Splits "cmd rest" on the first whitespace run.
std::pair<std::string, std::string> SplitCommand(const std::string& line) {
  size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) return {"", ""};
  size_t end = line.find_first_of(" \t", start);
  if (end == std::string::npos) return {line.substr(start), ""};
  size_t rest = line.find_first_not_of(" \t", end);
  return {line.substr(start, end - start),
          rest == std::string::npos ? "" : line.substr(rest)};
}

/// Attaches a stack-allocated per-statement governor to the evaluator and
/// guarantees detachment on every exit path (the Eval call sites return
/// early through BAGALG_ASSIGN_OR_RETURN, so a bare set/unset pair would
/// leave the evaluator pointing at a dead stack frame).
class EvalGovernor {
 public:
  EvalGovernor(Evaluator& evaluator, const GovernorOptions& options)
      : evaluator_(evaluator), governor_(options) {
    evaluator_.set_governor(&governor_);
  }
  ~EvalGovernor() {
    evaluator_.set_governor(nullptr);
    obs::MirrorGovernorStats();
  }
  EvalGovernor(const EvalGovernor&) = delete;
  EvalGovernor& operator=(const EvalGovernor&) = delete;

  ResourceGovernor* get() { return &governor_; }

 private:
  Evaluator& evaluator_;
  ResourceGovernor governor_;
};

/// Parses the argument of \timeout / \memlimit: a decimal count or "off".
Result<uint64_t> ParseLimitArg(const std::string& text,
                               const std::string& syntax) {
  if (text.empty()) return Status::ParseError(syntax);
  if (text == "off") return uint64_t{0};
  auto n = BigNat::FromDecimal(text);
  if (!n.ok()) return Status::ParseError(syntax);
  auto v = n->ToUint64();
  if (!v.ok()) return Status::ParseError(syntax);
  return *v;
}

}  // namespace

ScriptRunner::ScriptRunner(Limits limits)
    : evaluator_(limits), tracer_(/*enabled=*/false) {
  // The flight recorder is on by default: the tracer runs in non-buffering
  // mode feeding only the ring, so every session carries a bounded
  // last-K-spans black box without accumulating an unbounded trace.
  tracer_.set_flight_recorder(&flight_);
  SyncTracerMode();
  // Exported journals lead with the build identity (docs/OBSERVABILITY.md):
  // which binary, which commit, which default engine produced the entries.
  journal_.set_header_json(
      "{\"header\":true,\"build\":" + BuildInfoJson() +
      ",\"engine_default\":" +
      std::string("\"") + exec::EngineName(exec::EngineFromEnv()) + "\"}");
}

void ScriptRunner::set_budget(std::optional<analysis::CostBudget> budget) {
  budget_ = std::move(budget);
  evaluator_.set_preflight(
      budget_.has_value() ? analysis::MakeBudgetPreflight(*budget_)
                          : Evaluator::Preflight{});
}

void ScriptRunner::SyncTracerMode() {
  tracer_.set_buffering(!trace_path_.empty());
  flight_.set_enabled(flight_on_);
  const bool enabled = flight_on_ || !trace_path_.empty();
  tracer_.set_enabled(enabled);
  evaluator_.set_tracer(enabled ? &tracer_ : nullptr);
}

obs::JournalEntry ScriptRunner::BeginJournalEntry(
    const std::string& kind, const std::string& statement, const Expr& expr) {
  obs::JournalEntry entry;
  entry.kind = kind;
  entry.statement = statement;
  entry.statement_hash = obs::HashStatementText(statement);
  // Best-effort static verdict; an expression the analyzer cannot cost
  // (unknown names, type errors caught later) journals with empty fields.
  auto cost = analysis::AnalyzeCost(expr, db_.schema(),
                                    analysis::CostFacts::Exact(db_));
  if (cost.ok()) {
    entry.tractability = analysis::TractabilityName(cost->root.cls);
    entry.cost_bound = cost->root.bound.ToString();
  }
  return entry;
}

void ScriptRunner::FinishStatement(obs::JournalEntry& entry,
                                   const Status& status,
                                   const ResourceGovernor& governor) {
  entry.bytes_accounted = governor.bytes_allocated();
  const TripKind trip = governor.trip_kind();
  if (status.ok()) {
    entry.outcome = "ok";
  } else if (trip != TripKind::kNone) {
    entry.outcome = TripKindName(trip);
  } else if (status.code() == StatusCode::kBudgetExceeded) {
    entry.outcome = "budget-refused";
  } else {
    entry.outcome = "error";
  }
  if (!status.ok()) entry.status_message = status.ToString();
  journal_.Append(std::move(entry));
  obs::GlobalMetrics().GetCounter("repl.statements")->Increment();
  // A governor trip is exactly when the black box earns its keep: snapshot
  // the ring before the next statement overwrites it.
  if (trip != TripKind::kNone && flight_on_) {
    last_flight_dump_ = obs::FormatFlightDump(flight_.Snapshot());
    obs::GlobalMetrics().GetCounter("repl.flight.dumps")->Increment();
  }
}

Result<std::string> ScriptRunner::RunLine(const std::string& line) {
  Result<std::string> out = RunCommand(line);
  // Keep the trace file valid after every traced statement, so scripts that
  // end (or die) without `\trace off` still leave a loadable trace behind.
  if (tracer_.enabled() && !trace_path_.empty()) {
    (void)obs::WriteChromeTraceFile(tracer_, trace_path_);
  }
  return out;
}

Result<std::string> ScriptRunner::RunCommand(const std::string& line) {
  std::string stripped = line.substr(0, line.find('#'));
  auto [cmd, rest] = SplitCommand(stripped);
  if (cmd.empty()) return std::string();

  if (cmd == "let") {
    size_t eq = rest.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("let syntax: let NAME = VALUE");
    }
    auto [name, unused] = SplitCommand(rest.substr(0, eq));
    (void)unused;
    if (name.empty() || IsReservedWord(name)) {
      return Status::ParseError("invalid bag name in let");
    }
    BAGALG_ASSIGN_OR_RETURN(Value v, ParseValue(rest.substr(eq + 1)));
    if (!v.IsBag()) {
      return Status::InvalidArgument("let binds bags; got a " +
                                     v.type().ToString());
    }
    BAGALG_RETURN_IF_ERROR(db_.Put(name, v.bag()));
    return name + " : " + v.type().ToString();
  }

  if (cmd == "schema") {
    size_t colon = rest.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("schema syntax: schema NAME : TYPE");
    }
    auto [name, unused] = SplitCommand(rest.substr(0, colon));
    (void)unused;
    BAGALG_ASSIGN_OR_RETURN(Type t, ParseType(rest.substr(colon + 1)));
    BAGALG_RETURN_IF_ERROR(db_.Declare(name, t));
    return name + " : " + t.ToString();
  }

  if (cmd == "eval" || cmd == "count") {
    BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(rest));
    last_result_.reset();
    obs::JournalEntry entry = BeginJournalEntry(cmd, rest, e);
    entry.engine = "eval";
    uint64_t steps_before = evaluator_.stats().steps;
    uint64_t t0 = obs::MonotonicNowNs();
    uint64_t cpu0 = obs::ThreadCpuNowNs();
    // Every statement runs governed: the session's \timeout / \memlimit
    // become this statement's budget, and the session token makes Ctrl-C
    // (or any cross-thread Cancel) a typed kCancelled instead of a dead
    // process. The governor lives on this stack frame only.
    cancel_.Reset();
    EvalGovernor governed(evaluator_, StatementGovernorOptions());
    Result<Value> vr = evaluator_.Eval(e, db_);
    uint64_t wall_ns = obs::MonotonicNowNs() - t0;
    uint64_t cpu1 = obs::ThreadCpuNowNs();
    uint64_t steps = evaluator_.stats().steps - steps_before;
    entry.wall_ns = wall_ns;
    entry.cpu_ns = cpu1 >= cpu0 ? cpu1 - cpu0 : 0;
    entry.steps = steps;
    if (vr.ok() && vr->IsBag()) {
      entry.result_distinct = uint64_t{vr->bag().DistinctCount()};
    }
    FinishStatement(entry, vr.status(), *governed.get());
    BAGALG_ASSIGN_OR_RETURN(Value v, std::move(vr));
    last_result_ = v;
    obs::GlobalMetrics().GetCounter("repl.eval.steps")->Increment(steps);
    obs::GlobalMetrics().GetHistogram("repl.eval.wall_us")
        ->Observe(wall_ns / 1000);
    std::string out = cmd == "count"
                          ? (v.IsBag() ? v.bag().TotalCount().ToString()
                                       : std::string())
                          : v.ToString();
    if (cmd == "count" && !v.IsBag()) {
      return Status::InvalidArgument("count requires a bag result");
    }
    if (timing_) {
      std::ostringstream os;
      os << out << "\n(time=" << static_cast<double>(wall_ns) / 1e6
         << "ms steps=" << steps << ")";
      return os.str();
    }
    return out;
  }

  if (cmd == "exec") {
    // Run through the execution engines (fused IR by default, Volcano as
    // fallback — see exec::Engine) instead of the tree-walking evaluator;
    // with tracing on, per-pipeline spans land in the same trace as the
    // evaluator's.
    BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(rest));
    last_result_.reset();
    obs::JournalEntry entry = BeginJournalEntry(cmd, rest, e);
    uint64_t t0 = obs::MonotonicNowNs();
    uint64_t cpu0 = obs::ThreadCpuNowNs();
    exec::ExecOptions options;
    options.tracer = tracer_.enabled() ? &tracer_ : nullptr;
    if (budget_.has_value()) {
      options.preflight = analysis::MakeBudgetPreflight(*budget_);
    }
    cancel_.Reset();
    ResourceGovernor governor(StatementGovernorOptions());
    options.governor = &governor;
    exec::ExecReport report;
    options.report = &report;
    Result<Bag> br = exec::RunPipeline(e, db_, options);
    uint64_t wall_ns = obs::MonotonicNowNs() - t0;
    uint64_t cpu1 = obs::ThreadCpuNowNs();
    entry.engine = exec::EngineName(report.engine_used);
    entry.wall_ns = wall_ns;
    entry.cpu_ns = cpu1 >= cpu0 ? cpu1 - cpu0 : 0;
    if (br.ok()) entry.result_distinct = uint64_t{br->DistinctCount()};
    FinishStatement(entry, br.status(), governor);
    BAGALG_ASSIGN_OR_RETURN(Bag b, std::move(br));
    last_result_ = Value::FromBag(b);
    std::string out = last_result_->ToString();
    if (timing_) {
      std::ostringstream os;
      os << out << "\n(time=" << static_cast<double>(wall_ns) / 1e6 << "ms)";
      return os.str();
    }
    return out;
  }

  if (cmd == "type") {
    BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(rest));
    BAGALG_ASSIGN_OR_RETURN(Type t, TypeOf(e, db_.schema()));
    return t.ToString();
  }

  if (cmd == "analyze") {
    BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(rest));
    BAGALG_ASSIGN_OR_RETURN(ExprAnalysis a, AnalyzeExpr(e, db_.schema()));
    std::ostringstream os;
    os << "type=" << a.type.ToString()
       << " fragment=BALG^" << a.max_type_nesting
       << " power_nesting=" << a.power_nesting << " nodes=" << a.node_count;
    if (a.uses_powerbag) os << " +powerbag";
    if (a.uses_fixpoint) os << " +fixpoint";
    return os.str();
  }

  if (cmd == "explain") {
    // `explain analyze EXPR` evaluates with per-node profiling; plain
    // `explain EXPR` stays static.
    auto [sub, analyze_rest] = SplitCommand(rest);
    std::string plan;
    if (sub == "analyze") {
      BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(analyze_rest));
      BAGALG_ASSIGN_OR_RETURN(plan, ExplainAnalyzeExpr(e, db_, evaluator_));
    } else if (sub == "cost") {
      BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(analyze_rest));
      BAGALG_ASSIGN_OR_RETURN(
          plan, analysis::ExplainCostExpr(e, db_.schema(),
                                          analysis::CostFacts::Exact(db_)));
    } else if (sub == "ir") {
      // `explain ir EXPR`: the fused pipeline tree the IR engine would
      // run — batch size, fused stages per node, hash-join promotions,
      // pushdown counts, and static_cost row bounds. `explain ir --facts
      // EXPR` additionally annotates each node with its proven dataflow
      // facts (shape, dup-freedom, keys, constant columns, row interval).
      auto [flag, facts_rest] = SplitCommand(analyze_rest);
      if (flag == "--facts") {
        BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(facts_rest));
        BAGALG_ASSIGN_OR_RETURN(plan, ir::ExplainIrFacts(e, db_));
      } else {
        BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(analyze_rest));
        BAGALG_ASSIGN_OR_RETURN(plan, ir::ExplainIr(e, db_));
      }
    } else {
      BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(rest));
      BAGALG_ASSIGN_OR_RETURN(plan, ExplainExpr(e, db_.schema()));
    }
    if (!plan.empty() && plan.back() == '\n') plan.pop_back();
    return plan;
  }

  if (cmd == "timing") {
    if (rest == "on") {
      timing_ = true;
      return std::string("timing on");
    }
    if (rest == "off") {
      timing_ = false;
      return std::string("timing off");
    }
    return Status::ParseError("timing syntax: timing on|off");
  }

  if (cmd == "\\lint") {
    BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(rest));
    analysis::LintOptions options;
    if (budget_.has_value()) options.budget = &*budget_;
    // Symbolic facts: lint is a *static* verdict, independent of whatever
    // bags happen to be loaded right now.
    BAGALG_ASSIGN_OR_RETURN(
        std::vector<analysis::LintDiag> diags,
        analysis::RunLint(e, db_.schema(), analysis::CostFacts::Symbolic(),
                          options));
    if (diags.empty()) return std::string("no lint diagnostics");
    std::ostringstream os;
    for (size_t i = 0; i < diags.size(); ++i) {
      if (i > 0) os << "\n";
      os << LintSeverityName(diags[i].severity) << ": "
         << diags[i].ToString();
    }
    return os.str();
  }

  if (cmd == "\\budget") {
    if (rest == "off") {
      budget_.reset();
      evaluator_.set_preflight({});
      return std::string("budget off");
    }
    auto [size_text, mode] = SplitCommand(rest);
    BAGALG_ASSIGN_OR_RETURN(BigNat max, BigNat::FromDecimal(size_text));
    if (!mode.empty() && mode != "warn") {
      return Status::ParseError("budget syntax: \\budget N [warn] | off");
    }
    analysis::CostBudget budget;
    budget.max_estimated_size = max;
    budget.on_exceed = mode == "warn"
                           ? analysis::CostBudget::OnExceed::kWarn
                           : analysis::CostBudget::OnExceed::kFail;
    budget_ = budget;
    evaluator_.set_preflight(analysis::MakeBudgetPreflight(budget));
    return "budget " + max.ToString() +
           (mode == "warn" ? std::string(" (warn)") : std::string());
  }

  if (cmd == "\\timeout") {
    BAGALG_ASSIGN_OR_RETURN(
        timeout_ms_,
        ParseLimitArg(rest, "timeout syntax: \\timeout MS | off"));
    if (timeout_ms_ == 0) return std::string("timeout off");
    return "timeout " + std::to_string(timeout_ms_) + "ms";
  }

  if (cmd == "\\memlimit") {
    BAGALG_ASSIGN_OR_RETURN(
        memlimit_bytes_,
        ParseLimitArg(rest, "memlimit syntax: \\memlimit BYTES | off"));
    if (memlimit_bytes_ == 0) return std::string("memlimit off");
    return "memlimit " + std::to_string(memlimit_bytes_) + " bytes";
  }

  if (cmd == "\\metrics") {
    std::string dump = obs::GlobalMetrics().Snapshot().ToString();
    return dump.empty() ? std::string("(no metrics recorded)") : dump;
  }

  if (cmd == "\\trace") {
    if (rest.empty()) {
      return Status::ParseError("trace syntax: \\trace FILE | \\trace off");
    }
    if (rest == "off") {
      std::string path;
      path.swap(trace_path_);
      // Back to flight-only mode (or fully off if \flightrec off too).
      SyncTracerMode();
      if (!path.empty()) {
        BAGALG_RETURN_IF_ERROR(obs::WriteChromeTraceFile(tracer_, path));
        return "trace written to " + path + " (" +
               std::to_string(tracer_.event_count()) + " events)";
      }
      return std::string("tracing off");
    }
    trace_path_ = rest;
    tracer_.Clear();
    SyncTracerMode();
    // Write the (empty) trace now so an unwritable path fails loudly here
    // rather than silently at the per-statement flushes.
    Status st = obs::WriteChromeTraceFile(tracer_, trace_path_);
    if (!st.ok()) {
      trace_path_.clear();
      SyncTracerMode();
      return st;
    }
    return "tracing to " + trace_path_;
  }

  if (cmd == "\\journal") {
    auto [sub, arg] = SplitCommand(rest);
    if (sub == "export") {
      if (arg.empty()) {
        return Status::ParseError(
            "journal syntax: \\journal [N] | \\journal export FILE");
      }
      BAGALG_RETURN_IF_ERROR(journal_.ExportJsonl(arg));
      uint64_t retained =
          std::min<uint64_t>(journal_.total(), journal_.capacity());
      return "journal written to " + arg + " (" + std::to_string(retained) +
             " entries)";
    }
    size_t n = 10;
    if (!sub.empty()) {
      auto parsed = BigNat::FromDecimal(sub);
      Result<uint64_t> v = parsed.ok() ? parsed->ToUint64()
                                       : Result<uint64_t>(parsed.status());
      if (!v.ok() || *v == 0) {
        return Status::ParseError(
            "journal syntax: \\journal [N] | \\journal export FILE");
      }
      n = static_cast<size_t>(*v);
    }
    std::string out = journal_.ToString(n);
    return out.empty() ? std::string("(journal empty)") : out;
  }

  if (cmd == "\\flightrec") {
    if (rest == "on") {
      flight_on_ = true;
      SyncTracerMode();
      return std::string("flight recorder on");
    }
    if (rest == "off") {
      flight_on_ = false;
      SyncTracerMode();
      return std::string("flight recorder off");
    }
    if (rest == "dump") {
      return obs::FormatFlightDump(flight_.Snapshot());
    }
    if (rest == "clear") {
      flight_.Clear();
      return std::string("flight recorder cleared");
    }
    return Status::ParseError(
        "flightrec syntax: \\flightrec on|off|dump|clear");
  }

  if (cmd == "\\prom") {
    std::string text = obs::GlobalMetrics().Snapshot().ToPrometheusText();
    if (rest.empty()) {
      if (!text.empty() && text.back() == '\n') text.pop_back();
      return text.empty() ? std::string("(no metrics recorded)") : text;
    }
    std::ofstream file(rest, std::ios::trunc);
    if (!file) return Status::InvalidArgument("cannot open " + rest);
    file << text;
    file.flush();
    if (!file) return Status::InvalidArgument("failed writing " + rest);
    return "metrics written to " + rest;
  }

  if (cmd == "fragment") {
    // fragment K EXPR — is the expression within BALG^K?
    auto [k_text, expr_text] = SplitCommand(rest);
    BAGALG_ASSIGN_OR_RETURN(BigNat k, BigNat::FromDecimal(k_text));
    BAGALG_ASSIGN_OR_RETURN(uint64_t kv, k.ToUint64());
    BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(expr_text));
    Status st = CheckFragment(e, db_.schema(), static_cast<int>(kv));
    return st.ok() ? "within BALG^" + k_text : st.ToString();
  }

  if (cmd == "optimize") {
    BAGALG_ASSIGN_OR_RETURN(Expr e, ParseExpr(rest));
    BAGALG_ASSIGN_OR_RETURN(Expr opt, Optimize(e, db_.schema()));
    return opt.ToString();
  }

  if (cmd == "dump") {
    // Emit the database as a replayable script.
    std::ostringstream os;
    for (const auto& [name, bag] : db_.instances()) {
      os << "let " << name << " = " << bag.ToString() << "\n";
    }
    std::string text = os.str();
    if (!text.empty()) text.pop_back();
    return text;
  }

  if (cmd == "stats") {
    return evaluator_.stats().ToString();
  }

  if (cmd == "reset") {
    db_ = Database();
    evaluator_.ResetStats();
    return std::string("ok");
  }

  return Status::ParseError("unknown command '" + cmd + "'");
}

GovernorOptions ScriptRunner::StatementGovernorOptions() {
  GovernorOptions options;
  options.wall_limit_ns = timeout_ms_ * uint64_t{1000000};
  options.memory_limit_bytes = memlimit_bytes_;
  options.cancel = cancel_;
  return options;
}

namespace {

/// Bracket balance of a line with its '#' comment stripped — used to join
/// multi-line commands.
int BracketBalance(const std::string& line) {
  int balance = 0;
  for (char c : line) {
    if (c == '#') break;
    if (c == '(' || c == '[' || c == '{') ++balance;
    if (c == ')' || c == ']' || c == '}') --balance;
  }
  return balance;
}

}  // namespace

Result<std::string> ScriptRunner::RunScript(const std::string& text) {
  std::ostringstream out;
  size_t line_no = 0;
  size_t command_start = 0;
  std::string pending;
  int balance = 0;
  for (const std::string& line : SplitString(text, '\n')) {
    ++line_no;
    if (pending.empty()) command_start = line_no;
    // Commands may span lines while brackets remain open.
    pending += (pending.empty() ? "" : " ") +
               line.substr(0, line.find('#'));
    balance += BracketBalance(line);
    if (balance > 0) continue;
    balance = 0;
    std::string command;
    std::swap(command, pending);
    auto r = RunLine(command);
    if (!r.ok()) {
      return Status(r.status().code(),
                    "line " + std::to_string(command_start) + ": " +
                        r.status().message());
    }
    if (!r->empty()) out << *r << "\n";
  }
  if (!pending.empty() && pending.find_first_not_of(" \t") != std::string::npos) {
    return Status::ParseError("line " + std::to_string(command_start) +
                              ": unbalanced brackets at end of script");
  }
  return out.str();
}

}  // namespace bagalg::lang
