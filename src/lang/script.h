#ifndef BAGALG_LANG_SCRIPT_H_
#define BAGALG_LANG_SCRIPT_H_

/// \file script.h
/// A line-oriented script interpreter over the bagalg surface syntax —
/// the engine behind the examples/repl binary.
///
/// Commands (one per line; '#' comments):
///   let NAME = VALUE          bind a bag (the VALUE must be a bag literal)
///   schema NAME : TYPE        declare an input's bag type
///   eval EXPR                 evaluate and print the resulting object
///   count EXPR                evaluate and print the total cardinality
///   exec EXPR                 evaluate via the execution engines (fused IR
///                             by default, Volcano fallback; selection via
///                             BAGALG_EXEC_ENGINE) instead of the tree
///                             walker
///   type EXPR                 print the static type
///   analyze EXPR              print fragment info (nesting, power nesting)
///   explain EXPR              print the typed operator tree (EXPLAIN)
///   explain analyze EXPR      evaluate + print the tree with actual calls,
///                             cumulative time, and max bag sizes per node
///   explain cost EXPR         print the tree annotated with the static cost
///                             analysis: tractability class, polynomial
///                             degree, symbolic and estimated size bounds
///   explain ir EXPR           print the fused pipeline tree of the IR
///                             engine: batch size, fused stages, hash-join
///                             promotions, pushdowns, row bounds
///   explain ir --facts EXPR   same, with each node annotated with its
///                             proven dataflow facts: shape, dup-freedom,
///                             keys, constant columns, row interval
///   fragment K EXPR           check membership in BALG^K
///   optimize EXPR             print the rewritten expression
///   dump                      print the database as a replayable script
///   stats                     print evaluator statistics so far
///   timing on|off             print wall time + steps after each eval/count
///   reset                     clear database and statistics
///   \metrics                  print the process-wide metrics registry
///   \lint EXPR                run the static lint rules (symbolic input
///                             sizes) and print the diagnostics
///   \budget N [warn]          refuse (or, with warn, admit but count)
///                             queries whose statically estimated output
///                             exceeds N before running them
///   \budget off               clear the budget
///   \trace FILE               start tracing evaluations; the Chrome
///                             trace-event JSON is (re)written to FILE after
///                             every traced statement
///   \trace off                stop tracing (final flush included)
///   \timeout MS               give each following eval/count/exec statement
///                             a wall-clock deadline of MS milliseconds; a
///                             tripped query returns DeadlineExceeded and
///                             the session keeps running
///   \timeout off              clear the deadline
///   \memlimit BYTES           cap each statement's accounted allocations;
///                             a tripped query returns ResourceExhausted
///   \memlimit off             clear the memory cap
///   \journal [N]              print the last N (default 10) query-journal
///                             entries; every eval/count/exec statement is
///                             journaled — successes and failures alike
///   \journal export FILE      write the retained journal entries to FILE
///                             as JSONL (schema: docs/OBSERVABILITY.md)
///   \flightrec on|off         toggle the span flight recorder (on by
///                             default); with it on, a statement that trips
///                             a governor limit or injected fault leaves a
///                             last-K-spans dump behind (see
///                             TakeFlightDump / the repl binary)
///   \flightrec dump           print the flight-recorder ring right now
///   \flightrec clear          empty the flight-recorder ring
///   \prom [FILE]              Prometheus text exposition of the global
///                             metrics registry (printed, or written to
///                             FILE)

#include <optional>
#include <string>

#include "src/algebra/database.h"
#include "src/algebra/eval.h"
#include "src/analysis/static_cost.h"
#include "src/obs/flight.h"
#include "src/obs/journal.h"
#include "src/obs/trace.h"
#include "src/util/governor.h"
#include "src/util/result.h"

namespace bagalg::lang {

/// Stateful script interpreter. Not thread-safe.
class ScriptRunner {
 public:
  explicit ScriptRunner(Limits limits = Limits::Default());

  /// Executes one line; returns its printable output (possibly empty).
  Result<std::string> RunLine(const std::string& line);

  /// Executes a whole script, concatenating per-line outputs. Stops at the
  /// first error, which is returned annotated with its line number.
  Result<std::string> RunScript(const std::string& text);

  /// The accumulated database (for tests).
  const Database& database() const { return db_; }

  /// The runner's evaluator (tests inspect stats/profiles through this).
  const Evaluator& evaluator() const { return evaluator_; }

  /// The runner's tracer (enabled/cleared by the \trace command).
  const obs::Tracer& tracer() const { return tracer_; }

  /// The session's query journal (one entry per eval/count/exec statement).
  const obs::QueryJournal& journal() const { return journal_; }

  /// The session's span flight recorder (fed by the tracer whenever
  /// \flightrec is on, which is the default).
  const obs::FlightRecorder& flight_recorder() const { return flight_; }

  /// When the last statement tripped a governor limit (deadline, memcap,
  /// cancellation, injected fault), this holds the flight-recorder dump
  /// captured at the abort — the last-K-spans context including the
  /// aborting span's ancestry. Returns it and clears it; empty when the
  /// last statement did not trip. The repl binary prints this after the
  /// error message.
  std::string TakeFlightDump() {
    std::string dump;
    dump.swap(last_flight_dump_);
    return dump;
  }

  /// The active admission budget (set/cleared by the \budget command).
  const std::optional<analysis::CostBudget>& budget() const {
    return budget_;
  }

  /// The session's cancellation token. Cancel() (async-signal-safe) aborts
  /// the statement currently running — it returns kCancelled and the
  /// session stays usable; the token is re-armed at each statement start.
  /// The REPL's Ctrl-C handler holds a copy of this token.
  CancellationToken cancel_token() const { return cancel_; }

  /// Current \timeout / \memlimit settings (0 = off), for tests and prompts.
  uint64_t timeout_ms() const { return timeout_ms_; }
  uint64_t memlimit_bytes() const { return memlimit_bytes_; }

  /// Programmatic equivalents of \timeout, \memlimit, and \budget — bagalgd
  /// configures each session's defaults through these instead of
  /// synthesizing command lines. 0 / nullopt turn the limit off.
  void set_timeout_ms(uint64_t ms) { timeout_ms_ = ms; }
  void set_memlimit_bytes(uint64_t bytes) { memlimit_bytes_ = bytes; }
  void set_budget(std::optional<analysis::CostBudget> budget);

  /// The structured result of the most recent successful eval/exec
  /// statement (count results are bags too and land here). Cleared at the
  /// start of each statement; nullopt after failures and non-result
  /// commands. bagalgd serializes this through net/wire.h instead of
  /// re-parsing the printable output.
  const std::optional<Value>& last_result() const { return last_result_; }

 private:
  Result<std::string> RunCommand(const std::string& line);

  /// GovernorOptions for one statement from the session's \timeout,
  /// \memlimit, and cancellation token.
  GovernorOptions StatementGovernorOptions();

  /// Journal-entry scaffold for an eval/count/exec statement: statement
  /// text/hash plus the static analyzer's verdict when it is derivable.
  obs::JournalEntry BeginJournalEntry(const std::string& kind,
                                      const std::string& statement,
                                      const Expr& expr);

  /// Stamps the outcome (from the governor's trip kind and the Status),
  /// appends the entry, and on a governor trip captures the flight dump
  /// into last_flight_dump_.
  void FinishStatement(obs::JournalEntry& entry, const Status& status,
                       const ResourceGovernor& governor);

  /// Re-derives tracer_ enabled/buffering from trace_path_ / flight_on_.
  void SyncTracerMode();

  Database db_;
  Evaluator evaluator_;
  std::optional<Value> last_result_;
  obs::Tracer tracer_;
  obs::FlightRecorder flight_;
  obs::QueryJournal journal_;
  std::string trace_path_;
  std::string last_flight_dump_;
  bool flight_on_ = true;
  bool timing_ = false;
  std::optional<analysis::CostBudget> budget_;
  uint64_t timeout_ms_ = 0;
  uint64_t memlimit_bytes_ = 0;
  CancellationToken cancel_ = CancellationToken::Create();
};

}  // namespace bagalg::lang

#endif  // BAGALG_LANG_SCRIPT_H_
