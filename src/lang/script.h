#ifndef BAGALG_LANG_SCRIPT_H_
#define BAGALG_LANG_SCRIPT_H_

/// \file script.h
/// A line-oriented script interpreter over the bagalg surface syntax —
/// the engine behind the examples/repl binary.
///
/// Commands (one per line; '#' comments):
///   let NAME = VALUE          bind a bag (the VALUE must be a bag literal)
///   schema NAME : TYPE        declare an input's bag type
///   eval EXPR                 evaluate and print the resulting object
///   count EXPR                evaluate and print the total cardinality
///   exec EXPR                 evaluate via the Volcano-style pipeline
///                             (src/exec) instead of the tree walker
///   type EXPR                 print the static type
///   analyze EXPR              print fragment info (nesting, power nesting)
///   explain EXPR              print the typed operator tree (EXPLAIN)
///   explain analyze EXPR      evaluate + print the tree with actual calls,
///                             cumulative time, and max bag sizes per node
///   explain cost EXPR         print the tree annotated with the static cost
///                             analysis: tractability class, polynomial
///                             degree, symbolic and estimated size bounds
///   fragment K EXPR           check membership in BALG^K
///   optimize EXPR             print the rewritten expression
///   dump                      print the database as a replayable script
///   stats                     print evaluator statistics so far
///   timing on|off             print wall time + steps after each eval/count
///   reset                     clear database and statistics
///   \metrics                  print the process-wide metrics registry
///   \lint EXPR                run the static lint rules (symbolic input
///                             sizes) and print the diagnostics
///   \budget N [warn]          refuse (or, with warn, admit but count)
///                             queries whose statically estimated output
///                             exceeds N before running them
///   \budget off               clear the budget
///   \trace FILE               start tracing evaluations; the Chrome
///                             trace-event JSON is (re)written to FILE after
///                             every traced statement
///   \trace off                stop tracing (final flush included)
///   \timeout MS               give each following eval/count/exec statement
///                             a wall-clock deadline of MS milliseconds; a
///                             tripped query returns DeadlineExceeded and
///                             the session keeps running
///   \timeout off              clear the deadline
///   \memlimit BYTES           cap each statement's accounted allocations;
///                             a tripped query returns ResourceExhausted
///   \memlimit off             clear the memory cap

#include <optional>
#include <string>

#include "src/algebra/database.h"
#include "src/algebra/eval.h"
#include "src/analysis/static_cost.h"
#include "src/obs/trace.h"
#include "src/util/governor.h"
#include "src/util/result.h"

namespace bagalg::lang {

/// Stateful script interpreter. Not thread-safe.
class ScriptRunner {
 public:
  explicit ScriptRunner(Limits limits = Limits::Default())
      : evaluator_(limits), tracer_(/*enabled=*/false) {}

  /// Executes one line; returns its printable output (possibly empty).
  Result<std::string> RunLine(const std::string& line);

  /// Executes a whole script, concatenating per-line outputs. Stops at the
  /// first error, which is returned annotated with its line number.
  Result<std::string> RunScript(const std::string& text);

  /// The accumulated database (for tests).
  const Database& database() const { return db_; }

  /// The runner's evaluator (tests inspect stats/profiles through this).
  const Evaluator& evaluator() const { return evaluator_; }

  /// The runner's tracer (enabled/cleared by the \trace command).
  const obs::Tracer& tracer() const { return tracer_; }

  /// The active admission budget (set/cleared by the \budget command).
  const std::optional<analysis::CostBudget>& budget() const {
    return budget_;
  }

  /// The session's cancellation token. Cancel() (async-signal-safe) aborts
  /// the statement currently running — it returns kCancelled and the
  /// session stays usable; the token is re-armed at each statement start.
  /// The REPL's Ctrl-C handler holds a copy of this token.
  CancellationToken cancel_token() const { return cancel_; }

  /// Current \timeout / \memlimit settings (0 = off), for tests and prompts.
  uint64_t timeout_ms() const { return timeout_ms_; }
  uint64_t memlimit_bytes() const { return memlimit_bytes_; }

 private:
  Result<std::string> RunCommand(const std::string& line);

  /// GovernorOptions for one statement from the session's \timeout,
  /// \memlimit, and cancellation token.
  GovernorOptions StatementGovernorOptions();

  Database db_;
  Evaluator evaluator_;
  obs::Tracer tracer_;
  std::string trace_path_;
  bool timing_ = false;
  std::optional<analysis::CostBudget> budget_;
  uint64_t timeout_ms_ = 0;
  uint64_t memlimit_bytes_ = 0;
  CancellationToken cancel_ = CancellationToken::Create();
};

}  // namespace bagalg::lang

#endif  // BAGALG_LANG_SCRIPT_H_
