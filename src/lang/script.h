#ifndef BAGALG_LANG_SCRIPT_H_
#define BAGALG_LANG_SCRIPT_H_

/// \file script.h
/// A line-oriented script interpreter over the bagalg surface syntax —
/// the engine behind the examples/repl binary.
///
/// Commands (one per line; '#' comments):
///   let NAME = VALUE          bind a bag (the VALUE must be a bag literal)
///   schema NAME : TYPE        declare an input's bag type
///   eval EXPR                 evaluate and print the resulting object
///   count EXPR                evaluate and print the total cardinality
///   type EXPR                 print the static type
///   analyze EXPR              print fragment info (nesting, power nesting)
///   explain EXPR              print the typed operator tree (EXPLAIN)
///   fragment K EXPR           check membership in BALG^K
///   optimize EXPR             print the rewritten expression
///   dump                      print the database as a replayable script
///   stats                     print evaluator statistics so far
///   reset                     clear database and statistics

#include <string>

#include "src/algebra/database.h"
#include "src/algebra/eval.h"
#include "src/util/result.h"

namespace bagalg::lang {

/// Stateful script interpreter. Not thread-safe.
class ScriptRunner {
 public:
  explicit ScriptRunner(Limits limits = Limits::Default())
      : evaluator_(limits) {}

  /// Executes one line; returns its printable output (possibly empty).
  Result<std::string> RunLine(const std::string& line);

  /// Executes a whole script, concatenating per-line outputs. Stops at the
  /// first error, which is returned annotated with its line number.
  Result<std::string> RunScript(const std::string& text);

  /// The accumulated database (for tests).
  const Database& database() const { return db_; }

 private:
  Database db_;
  Evaluator evaluator_;
};

}  // namespace bagalg::lang

#endif  // BAGALG_LANG_SCRIPT_H_
