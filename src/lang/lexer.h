#ifndef BAGALG_LANG_LEXER_H_
#define BAGALG_LANG_LEXER_H_

/// \file lexer.h
/// Tokenizer for the bagalg surface syntax.
///
/// The surface language covers values ("{{[a, b]*3}}"), types
/// ("{{[U, U]}}"), and algebra expressions
/// ("map(v0 -> proj(1, v0), sel(v0 -> proj(1, v0) == proj(2, v0), B))").
/// Expr::ToString emits exactly this syntax, and the parser round-trips it.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace bagalg::lang {

enum class TokenKind {
  kIdent,       ///< identifiers: bag names, variables, atoms, keywords
  kNumber,      ///< decimal naturals (multiplicities, attribute indices)
  kLParen,      ///< (
  kRParen,      ///< )
  kLBracket,    ///< [
  kRBracket,    ///< ]
  kLBagBrace,   ///< {{
  kRBagBrace,   ///< }}
  kComma,       ///< ,
  kArrow,       ///< ->
  kEqEq,        ///< ==
  kEq,          ///< =
  kStar,        ///< *
  kQuote,       ///< '
  kColon,       ///< :
  kUnderscore,  ///< _ (the Bottom type)
  kEnd,         ///< end of input
};

/// One token with its source offset (for error messages).
struct Token {
  TokenKind kind;
  std::string text;
  size_t offset = 0;
};

/// Tokenizes `input`; "#" starts a comment running to end of line.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// Debug name of a token kind.
const char* TokenKindName(TokenKind kind);

}  // namespace bagalg::lang

#endif  // BAGALG_LANG_LEXER_H_
