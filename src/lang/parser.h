#ifndef BAGALG_LANG_PARSER_H_
#define BAGALG_LANG_PARSER_H_

/// \file parser.h
/// Recursive-descent parser for values, types, and algebra expressions.
///
/// Expression syntax (function-style, unambiguous):
///
///   e ::= NAME                         -- database input (or bound variable)
///       | 'VALUE                       -- literal complex object
///       | uplus(e, e) | monus(e, e) | umax(e, e) | inter(e, e) | prod(e, e)
///       | tup(e, ...) | bag(e) | proj(N, e)
///       | pow(e) | powbag(e) | flat(e) | dedup(e)
///       | map(x -> e, e) | sel(x -> e == e, e)
///       | nest([N, ...], e) | unnest([N], e)
///       | ifp(x -> e, e) | bifp(x -> e, e, e)
///
///   VALUE ::= atom | [VALUE, ...] | {{ VALUE (*N)?, ... }}
///   TYPE  ::= U | _ | [TYPE, ...] | {{TYPE}}
///
/// Variable names are resolved to de Bruijn indices; the operator keywords
/// are reserved (a database bag may not use them as its name).

#include <string_view>

#include "src/algebra/expr.h"
#include "src/core/type.h"
#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg::lang {

/// Parses a complete value; atoms are interned into `table` (the global
/// table if null).
Result<Value> ParseValue(std::string_view text, AtomTable* table = nullptr);

/// Parses a complete type.
Result<Type> ParseType(std::string_view text);

/// Parses a complete algebra expression.
Result<Expr> ParseExpr(std::string_view text, AtomTable* table = nullptr);

/// True iff `name` is a reserved operator keyword.
bool IsReservedWord(std::string_view name);

}  // namespace bagalg::lang

#endif  // BAGALG_LANG_PARSER_H_
