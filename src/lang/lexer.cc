#include "src/lang/lexer.h"

#include <cctype>

namespace bagalg::lang {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBagBrace:
      return "'{{'";
    case TokenKind::kRBagBrace:
      return "'}}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kEqEq:
      return "'=='";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kQuote:
      return "'''";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kUnderscore:
      return "'_'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, size_t start, size_t len) {
    tokens.push_back(Token{kind, std::string(input.substr(start, len)), start});
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      push(TokenKind::kNumber, start, i - start);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ++i;
      }
      push(TokenKind::kIdent, start, i - start);
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, i, 1);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, i, 1);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, i, 1);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, i, 1);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, i, 1);
        ++i;
        continue;
      case '*':
        push(TokenKind::kStar, i, 1);
        ++i;
        continue;
      case '\'':
        push(TokenKind::kQuote, i, 1);
        ++i;
        continue;
      case ':':
        push(TokenKind::kColon, i, 1);
        ++i;
        continue;
      case '_':
        push(TokenKind::kUnderscore, i, 1);
        ++i;
        continue;
      case '{':
        if (i + 1 < input.size() && input[i + 1] == '{') {
          push(TokenKind::kLBagBrace, i, 2);
          i += 2;
          continue;
        }
        return Status::ParseError("single '{' at offset " + std::to_string(i) +
                                  " (bags are written with '{{')");
      case '}':
        if (i + 1 < input.size() && input[i + 1] == '}') {
          push(TokenKind::kRBagBrace, i, 2);
          i += 2;
          continue;
        }
        return Status::ParseError("single '}' at offset " + std::to_string(i));
      case '-':
        if (i + 1 < input.size() && input[i + 1] == '>') {
          push(TokenKind::kArrow, i, 2);
          i += 2;
          continue;
        }
        return Status::ParseError("stray '-' at offset " + std::to_string(i));
      case '=':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          push(TokenKind::kEqEq, i, 2);
          i += 2;
          continue;
        }
        push(TokenKind::kEq, i, 1);
        ++i;
        continue;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
    }
  }
  tokens.push_back(Token{TokenKind::kEnd, "", input.size()});
  return tokens;
}

}  // namespace bagalg::lang
