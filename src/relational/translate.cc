#include "src/relational/translate.h"

#include "src/algebra/builder.h"

namespace bagalg::relational {

namespace {

bool ProducesBag(ExprKind kind) {
  switch (kind) {
    case ExprKind::kVar:
    case ExprKind::kConst:
    case ExprKind::kTupling:
    case ExprKind::kAttrProj:
      return false;  // object-level (Const handled separately)
    default:
      return true;
  }
}

Expr RebuildWithChildren(const ExprNode& n, std::vector<Expr> children) {
  ExprNode out = n;
  out.children = std::move(children);
  return Expr(std::make_shared<const ExprNode>(std::move(out)));
}

}  // namespace

Expr ToSetSemantics(const Expr& e) {
  const ExprNode& n = e.node();
  std::vector<Expr> children;
  children.reserve(n.children.size());
  for (const Expr& c : n.children) children.push_back(ToSetSemantics(c));
  Expr rebuilt = children.empty() && n.kind != ExprKind::kInput
                     ? e
                     : RebuildWithChildren(n, std::move(children));
  if (n.kind == ExprKind::kConst && n.literal->IsBag()) {
    return Eps(rebuilt);
  }
  if (n.kind == ExprKind::kDupElim) return rebuilt;  // already idempotent
  if (ProducesBag(n.kind)) return Eps(rebuilt);
  return rebuilt;
}

Result<Expr> TranslateBalg1ToRalg(const Expr& e) {
  const ExprNode& n = e.node();
  // Recurse on children first where structurally shared.
  auto translate_child = [&](size_t i) { return TranslateBalg1ToRalg(n.children[i]); };
  switch (n.kind) {
    case ExprKind::kInput:
      return Eps(e);
    case ExprKind::kConst:
      if (n.literal->IsBag()) return Eps(e);
      return e;
    case ExprKind::kVar:
      return e;
    case ExprKind::kTupling: {
      std::vector<Expr> children;
      for (size_t i = 0; i < n.children.size(); ++i) {
        BAGALG_ASSIGN_OR_RETURN(Expr c, translate_child(i));
        children.push_back(std::move(c));
      }
      return Tup(std::move(children));
    }
    case ExprKind::kAttrProj: {
      BAGALG_ASSIGN_OR_RETURN(Expr c, translate_child(0));
      return Proj(std::move(c), n.index);
    }
    case ExprKind::kBagging: {
      BAGALG_ASSIGN_OR_RETURN(Expr c, translate_child(0));
      return Beta(std::move(c));
    }
    case ExprKind::kAdditiveUnion:
    case ExprKind::kMaxUnion: {
      // Both unions collapse to set union under dedup.
      BAGALG_ASSIGN_OR_RETURN(Expr a, translate_child(0));
      BAGALG_ASSIGN_OR_RETURN(Expr b, translate_child(1));
      return Eps(Umax(std::move(a), std::move(b)));
    }
    case ExprKind::kIntersect: {
      BAGALG_ASSIGN_OR_RETURN(Expr a, translate_child(0));
      BAGALG_ASSIGN_OR_RETURN(Expr b, translate_child(1));
      return Eps(Inter(std::move(a), std::move(b)));
    }
    case ExprKind::kProduct: {
      BAGALG_ASSIGN_OR_RETURN(Expr a, translate_child(0));
      BAGALG_ASSIGN_OR_RETURN(Expr b, translate_child(1));
      return Eps(Product(std::move(a), std::move(b)));
    }
    case ExprKind::kMap: {
      BAGALG_ASSIGN_OR_RETURN(Expr body, translate_child(0));
      BAGALG_ASSIGN_OR_RETURN(Expr src, translate_child(1));
      return Eps(Map(std::move(body), std::move(src)));
    }
    case ExprKind::kSelect: {
      BAGALG_ASSIGN_OR_RETURN(Expr lhs, translate_child(0));
      BAGALG_ASSIGN_OR_RETURN(Expr rhs, translate_child(1));
      BAGALG_ASSIGN_OR_RETURN(Expr src, translate_child(2));
      return Eps(Select(std::move(lhs), std::move(rhs), std::move(src)));
    }
    case ExprKind::kDupElim:
      // ε "is simply omitted" (Prop 4.2) — the translation dedups anyway.
      return translate_child(0);
    default:
      return Status::Unsupported(
          std::string("operator ") + ExprKindName(n.kind) +
          " lies outside the BALG^1 \\ {-} fragment of Proposition 4.2");
  }
}

}  // namespace bagalg::relational
