#include "src/relational/relation.h"

namespace bagalg::relational {

Result<Relation> Relation::FromTuples(std::vector<Value> tuples) {
  Relation r;
  size_t arity = 0;
  bool first = true;
  for (Value& t : tuples) {
    if (!t.IsTuple()) {
      return Status::InvalidArgument("relations hold tuples, got " +
                                     t.type().ToString());
    }
    if (first) {
      arity = t.fields().size();
      first = false;
    } else if (t.fields().size() != arity) {
      return Status::InvalidArgument("mixed arities in relation");
    }
    r.tuples_.insert(std::move(t));
  }
  return r;
}

Result<Relation> Relation::FromBag(const Bag& bag) {
  std::vector<Value> tuples;
  tuples.reserve(bag.DistinctCount());
  for (const BagEntry& e : bag.entries()) tuples.push_back(e.value);
  return FromTuples(std::move(tuples));
}

Bag Relation::ToBag() const {
  Bag::Builder builder;
  for (const Value& t : tuples_) builder.AddOne(t);
  auto bag = std::move(builder).Build();
  // Homogeneity is guaranteed by construction.
  return bag.ok() ? std::move(bag).value() : Bag();
}

Relation Relation::Union(const Relation& other) const {
  Relation r = *this;
  r.tuples_.insert(other.tuples_.begin(), other.tuples_.end());
  return r;
}

Relation Relation::Intersect(const Relation& other) const {
  Relation r;
  for (const Value& t : tuples_) {
    if (other.Contains(t)) r.tuples_.insert(t);
  }
  return r;
}

Relation Relation::Difference(const Relation& other) const {
  Relation r;
  for (const Value& t : tuples_) {
    if (!other.Contains(t)) r.tuples_.insert(t);
  }
  return r;
}

Relation Relation::Product(const Relation& other) const {
  Relation r;
  for (const Value& a : tuples_) {
    for (const Value& b : other.tuples_) {
      std::vector<Value> fields = a.fields();
      fields.insert(fields.end(), b.fields().begin(), b.fields().end());
      r.tuples_.insert(Value::Tuple(std::move(fields)));
    }
  }
  return r;
}

Result<Relation> Relation::Project(const std::vector<size_t>& attrs) const {
  Relation r;
  for (const Value& t : tuples_) {
    std::vector<Value> fields;
    fields.reserve(attrs.size());
    for (size_t a : attrs) {
      if (a < 1 || a > t.fields().size()) {
        return Status::InvalidArgument("projection attribute out of range");
      }
      fields.push_back(t.fields()[a - 1]);
    }
    r.tuples_.insert(Value::Tuple(std::move(fields)));
  }
  return r;
}

Relation Relation::Select(
    const std::function<bool(const Value&)>& pred) const {
  Relation r;
  for (const Value& t : tuples_) {
    if (pred(t)) r.tuples_.insert(t);
  }
  return r;
}

Result<Relation> Relation::SelectEqAttrs(size_t i, size_t j) const {
  for (const Value& t : tuples_) {
    if (i < 1 || j < 1 || i > t.fields().size() || j > t.fields().size()) {
      return Status::InvalidArgument("selection attribute out of range");
    }
  }
  return Select([i, j](const Value& t) {
    return t.fields()[i - 1] == t.fields()[j - 1];
  });
}

Result<Relation> Relation::SelectEqConst(size_t i, const Value& c) const {
  for (const Value& t : tuples_) {
    if (i < 1 || i > t.fields().size()) {
      return Status::InvalidArgument("selection attribute out of range");
    }
  }
  return Select([i, &c](const Value& t) { return t.fields()[i - 1] == c; });
}

}  // namespace bagalg::relational
