#ifndef BAGALG_RELATIONAL_RELATION_H_
#define BAGALG_RELATIONAL_RELATION_H_

/// \file relation.h
/// A standalone set-based relational algebra — the paper's baseline RALG.
///
/// This is deliberately an *independent* implementation (a std::set of
/// tuples with classical set operators), not a wrapper over the bag engine,
/// so the Proposition 4.2 equivalence tests cross-validate two different
/// code paths: the BALG¹∖{−} → RALG∖{−} translation evaluated by the bag
/// engine under set semantics, and this reference engine.

#include <functional>
#include <set>
#include <vector>

#include "src/core/value.h"
#include "src/util/result.h"

namespace bagalg::relational {

/// A finite relation: a set of same-arity tuples (Values of tuple kind).
class Relation {
 public:
  Relation() = default;

  /// Builds from tuple values; duplicates collapse. InvalidArgument if the
  /// values are not tuples of equal arity.
  static Result<Relation> FromTuples(std::vector<Value> tuples);

  /// Builds from a bag, discarding multiplicities (the DB' of Prop 4.2).
  static Result<Relation> FromBag(const Bag& bag);

  /// Converts to a set-like bag.
  Bag ToBag() const;

  const std::set<Value>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  bool Contains(const Value& t) const { return tuples_.count(t) != 0; }

  /// Classical set operators. Product concatenates tuple fields.
  Relation Union(const Relation& other) const;
  Relation Intersect(const Relation& other) const;
  Relation Difference(const Relation& other) const;
  Relation Product(const Relation& other) const;

  /// π over 1-based attribute indices.
  Result<Relation> Project(const std::vector<size_t>& attrs) const;

  /// σ with an arbitrary predicate.
  Relation Select(const std::function<bool(const Value&)>& pred) const;

  /// σ_{i=j} (1-based attributes).
  Result<Relation> SelectEqAttrs(size_t i, size_t j) const;

  /// σ_{i=c} (1-based attribute, constant).
  Result<Relation> SelectEqConst(size_t i, const Value& c) const;

  bool operator==(const Relation& other) const {
    return tuples_ == other.tuples_;
  }

 private:
  std::set<Value> tuples_;
};

}  // namespace bagalg::relational

#endif  // BAGALG_RELATIONAL_RELATION_H_
