#ifndef BAGALG_RELATIONAL_TRANSLATE_H_
#define BAGALG_RELATIONAL_TRANSLATE_H_

/// \file translate.h
/// The Proposition 4.2 machinery: RALG as a semantics over BALG syntax, and
/// the BALG¹∖{−} → RALG∖{−} translation.
///
/// The paper proves BALG¹ without subtraction has the same expressive power
/// as the relational algebra without difference: every BALG¹∖{−} query Q
/// has an RALG∖{−} counterpart Q' with  a ∈ Q(DB) ⟺ a ∈ Q'(DB') where DB'
/// deduplicates DB. Here:
///   * ToSetSemantics(e) models "RALG" inside the engine by inserting ε
///     after every bag-producing operator (the easy direction: RALG ⊆
///     BALG¹∖{−} by adding duplicate elimination after each operator);
///   * TranslateBalg1ToRalg(e) is the substantive direction, mapping ⊎ to
///     set union and erasing ε, with errors outside the fragment.

#include "src/algebra/expr.h"
#include "src/util/result.h"

namespace bagalg::relational {

/// Rewrites `e` so each bag-producing operator is followed by duplicate
/// elimination — the embedding of RALG into BALG (Prop 4.2, direction 1).
Expr ToSetSemantics(const Expr& e);

/// Translates a BALG¹∖{−} expression into its RALG∖{−} counterpart Q'
/// (expressed in the shared AST under set semantics): ⊎ becomes set union,
/// ε is erased, the remaining operators map one-to-one. Unsupported if the
/// expression uses −, P, P_b, δ, nest/unnest, or fixpoints (outside the
/// Prop 4.2 fragment).
Result<Expr> TranslateBalg1ToRalg(const Expr& e);

}  // namespace bagalg::relational

#endif  // BAGALG_RELATIONAL_TRANSLATE_H_
