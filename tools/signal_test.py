#!/usr/bin/env python3
"""Signal-handling tests for the bagalg binaries. Stdlib only.

Two scenarios that cannot live in a unit test because they need real
processes receiving real signals:

1. bagalgd SIGTERM graceful drain: start the server, put a statement in
   flight that would run (nearly) forever, SIGTERM the process, and
   assert that it exits 0 within the deadline, reports a drain summary,
   flushes the session journal (header line included), and that the
   in-flight request ended in a typed outcome rather than vanishing.

2. REPL SIGINT cancel: run the interactive REPL (under BAGALG_THREADS=8
   when the caller sets it — the ctest registration does), start a
   hyperexponential statement, SIGINT mid-flight, and assert the
   statement returns Cancelled while the session survives and answers
   the next statement; EOF then exits 0.
"""

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

BIG_LET = "let X = {{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p,q,r,s,t,u}}"
# Enumerating pow(X) for |X| = 21 walks 2^21 subbags: ~tens of seconds,
# but legal (under the powerset enumeration guard), so the only way it
# ends early is cooperative cancellation.
FOREVER = "count pow(X)"


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def wait_for_port_line(proc, deadline_s=10):
    """Reads stdout until the 'bagalgd listening on HOST:PORT' line."""
    start = time.time()
    while time.time() - start < deadline_s:
        line = proc.stdout.readline()
        if not line:
            fail("bagalgd exited before announcing its port")
        line = line.strip()
        if line.startswith("bagalgd listening on "):
            return int(line.rsplit(":", 1)[1])
    fail("timed out waiting for the bagalgd listening line")


def post_statement(port, payload, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", "/v1/statement", json.dumps(payload),
                     {"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8", "replace")
    finally:
        conn.close()


def test_bagalgd_sigterm(binary):
    journal_dir = tempfile.mkdtemp(prefix="bagalg_signal_")
    proc = subprocess.Popen(
        [binary, "--port=0", f"--journal-dir={journal_dir}"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        start_new_session=True)
    try:
        port = wait_for_port_line(proc)
        status, _ = post_statement(
            port, {"session": "sig", "statement": BIG_LET})
        if status != 200:
            fail(f"setup statement failed with HTTP {status}")

        in_flight = {}

        def run_forever():
            try:
                in_flight["status"], in_flight["body"] = post_statement(
                    port, {"session": "sig", "statement": FOREVER})
            except OSError:
                # Torn connection during drain is acceptable: the server
                # may close before the response write lands.
                in_flight["status"] = "torn"

        thread = threading.Thread(target=run_forever)
        thread.start()
        time.sleep(1.0)  # let the statement pass admission and run

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("bagalgd did not drain within 30s of SIGTERM")
        thread.join(timeout=10)

        if code != 0:
            fail(f"bagalgd exited {code} after SIGTERM, wanted 0")
        stderr = proc.stderr.read()
        if "drained" not in stderr:
            fail(f"no drain summary on stderr: {stderr!r}")
        if in_flight.get("status") not in (499, 503, "torn"):
            fail(f"in-flight statement ended with {in_flight.get('status')}"
                 f" ({in_flight.get('body', '')[:200]}), wanted 499/503/torn")

        journal = os.path.join(journal_dir, "session-sig.jsonl")
        if not os.path.exists(journal):
            fail(f"session journal not flushed to {journal}")
        with open(journal, encoding="utf-8") as f:
            first = json.loads(f.readline())
        if first.get("header") is not True or "build" not in first:
            fail(f"journal header malformed: {first}")
        print("ok: bagalgd SIGTERM drains cleanly "
              f"(in-flight -> {in_flight.get('status')})")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_repl_sigint(binary):
    proc = subprocess.Popen(
        [binary], stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, bufsize=1,
        start_new_session=True)
    try:
        proc.stdin.write(f"{BIG_LET}\n{FOREVER}\n")
        proc.stdin.flush()
        time.sleep(1.5)  # statement is now running
        proc.send_signal(signal.SIGINT)
        time.sleep(0.2)
        try:
            # communicate() writes the post-cancel statement, closes stdin
            # (EOF -> clean exit), and collects the transcript.
            out, _ = proc.communicate(input="count X\n", timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("REPL did not finish after SIGINT + EOF")
        if proc.returncode != 0:
            fail(f"REPL exited {proc.returncode}, wanted 0")
        if "Cancelled" not in out:
            fail(f"no Cancelled error after SIGINT; output: {out[-500:]!r}")
        # The session survived: the post-cancel statement still answered.
        if "21" not in out.split("Cancelled", 1)[1]:
            fail(f"session did not answer after cancel: {out[-500:]!r}")
        print("ok: REPL SIGINT cancels the statement, session survives "
              f"(BAGALG_THREADS={os.environ.get('BAGALG_THREADS', 'unset')})")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bagalgd", required=True)
    parser.add_argument("--repl", required=True)
    args = parser.parse_args()
    test_bagalgd_sigterm(args.bagalgd)
    test_repl_sigint(args.repl)
    print("OK")


if __name__ == "__main__":
    main()
