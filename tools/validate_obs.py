#!/usr/bin/env python3
"""Validate bagalg observability artifacts.

Checks any combination of the three machine-readable artifacts the REPL
and benchmarks produce:

  --journal FILE   JSON Lines from `\\journal export FILE`
                   (schema: tools/schemas/journal.schema.json, plus
                   monotone seq numbers)
  --trace FILE     Chrome trace-event JSON from `\\trace FILE` /
                   `--bagalg_trace=FILE` (schema:
                   tools/schemas/trace.schema.json, plus span-tree
                   linkage: unique ids, resolvable parents, consistent
                   depths, children contained in parents' intervals)
  --prom FILE      Prometheus text exposition from `\\prom FILE`
                   (format rules: legal names, typed families,
                   cumulative histogram buckets closed by +Inf == _count)

Stdlib only — the schema checker implements the subset of JSON Schema
the checked-in schemas use (type, enum, pattern, minimum, required,
properties, items, additionalProperties). Exits non-zero and prints one
line per problem on failure.
"""

import argparse
import json
import math
import os
import re
import sys


# --------------------------------------------------------------- schema


def check_schema(value, schema, path, errors):
    """Validate `value` against the supported JSON-Schema subset."""
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
        return
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if isinstance(value, str) and "pattern" in schema:
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match {schema['pattern']!r}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                check_schema(value[key], sub, f"{path}.{key}", errors)
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check_schema(item, schema["items"], f"{path}[{i}]", errors)


def _type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return True


def load_schema(schemas_dir, name):
    with open(os.path.join(schemas_dir, name), encoding="utf-8") as f:
        return json.load(f)


# -------------------------------------------------------------- journal


def validate_journal(path, schemas_dir, errors):
    schema = load_schema(schemas_dir, "journal.schema.json")
    entries = 0
    prev_seq = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: not valid JSON: {exc}")
                continue
            # A self-describing header line ({"header":true, "build":{...}})
            # may precede the entries; it is not a journal entry and is only
            # legal as line 1.
            if isinstance(entry, dict) and entry.get("header") is True:
                if entries or prev_seq:
                    errors.append(f"{where}: header line after entries")
                if "build" not in entry:
                    errors.append(f"{where}: header lacks 'build'")
                continue
            check_schema(entry, schema, where, errors)
            entries += 1
            seq = entry.get("seq")
            if isinstance(seq, int):
                if seq <= prev_seq:
                    errors.append(
                        f"{where}: seq {seq} not greater than previous {prev_seq}"
                    )
                prev_seq = seq
    if entries == 0:
        errors.append(f"{path}: journal is empty")
    return entries


# ---------------------------------------------------------------- trace


def validate_trace(path, schemas_dir, errors):
    schema = load_schema(schemas_dir, "trace.schema.json")
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except json.JSONDecodeError as exc:
        errors.append(f"{path}: not valid JSON: {exc}")
        return 0
    check_schema(doc, schema, path, errors)
    if errors:
        return 0
    events = doc.get("traceEvents", [])
    by_id = {}
    for i, event in enumerate(events):
        span_id = event["args"]["id"]
        if span_id in by_id:
            errors.append(f"{path}: duplicate span id {span_id} (event {i})")
        by_id[span_id] = event
    for i, event in enumerate(events):
        args = event["args"]
        parent = args["parent"]
        where = f"{path}: event {i} ({event['name']!r}, id={args['id']})"
        if parent == 0:
            if args["depth"] != 0:
                errors.append(f"{where}: root span has depth {args['depth']}")
            continue
        if parent not in by_id:
            errors.append(f"{where}: parent {parent} not in trace")
            continue
        pevent = by_id[parent]
        pdepth = pevent["args"]["depth"]
        if args["depth"] != pdepth + 1:
            errors.append(
                f"{where}: depth {args['depth']} but parent depth {pdepth}"
            )
        # A child span must fall inside its parent's wall interval
        # (microsecond rounding in the exporter allows a little slack).
        slack = 0.5
        if event["ts"] + slack < pevent["ts"] or (
            event["ts"] + event["dur"] > pevent["ts"] + pevent["dur"] + slack
        ):
            errors.append(f"{where}: interval escapes parent {parent}")
    if not events:
        errors.append(f"{path}: trace has no events")
    return len(events)


# ----------------------------------------------------------- prometheus

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')


def parse_le(text):
    if text == "+Inf":
        return math.inf
    try:
        return float(text)
    except ValueError:
        return None


def validate_prom(path, errors):
    types = {}
    samples = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            where = f"{path}:{lineno}"
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) >= 2 and parts[1] == "TYPE":
                    if len(parts) != 4:
                        errors.append(f"{where}: malformed TYPE line")
                        continue
                    _, _, name, kind = parts
                    if not NAME_RE.match(name):
                        errors.append(f"{where}: illegal metric name {name!r}")
                    if kind not in ("counter", "gauge", "histogram"):
                        errors.append(f"{where}: unknown metric type {kind!r}")
                    if name in types:
                        errors.append(f"{where}: duplicate TYPE for {name}")
                    types[name] = kind
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"{where}: malformed sample line {line!r}")
                continue
            labels = {}
            if m.group("labels"):
                for piece in m.group("labels").split(","):
                    lm = LABEL_RE.match(piece.strip())
                    if not lm:
                        errors.append(f"{where}: malformed label {piece!r}")
                        continue
                    labels[lm.group("key")] = lm.group("val")
            try:
                value = float(m.group("value"))
            except ValueError:
                errors.append(f"{where}: non-numeric value {m.group('value')!r}")
                continue
            samples.append((m.group("name"), labels, value, where))

    by_name = {}
    for name, labels, value, where in samples:
        by_name.setdefault(name, []).append((labels, value, where))

    for name, series in by_name.items():
        family, kind = _family_of(name, types)
        if kind is None:
            errors.append(f"{path}: sample {name} has no TYPE declaration")
            continue
        if kind == "counter":
            if not name.endswith("_total"):
                errors.append(f"{path}: counter {name} lacks _total suffix")
            for _, value, where in series:
                if value < 0:
                    errors.append(f"{where}: counter {name} is negative")
        if kind == "histogram" and name == family + "_bucket":
            _check_buckets(path, family, series, by_name, errors)

    for family, kind in types.items():
        if kind == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if family + suffix not in by_name:
                    errors.append(f"{path}: histogram {family} missing {suffix}")
        elif family not in by_name:
            errors.append(f"{path}: TYPE {family} has no samples")
    if not samples:
        errors.append(f"{path}: exposition has no samples")
    return len(samples)


def _family_of(sample_name, types):
    """Map a sample name to its declared family and type."""
    if sample_name in types:
        return sample_name, types[sample_name]
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            family = sample_name[: -len(suffix)]
            if types.get(family) == "histogram":
                return family, "histogram"
    return sample_name, None


def _check_buckets(path, family, buckets, by_name, errors):
    les = []
    for labels, value, where in buckets:
        le = parse_le(labels.get("le", ""))
        if le is None:
            errors.append(f"{where}: bucket of {family} has bad le")
            return
        les.append((le, value))
    les.sort(key=lambda p: p[0])
    prev = -1.0
    for le, value in les:
        if value < prev:
            errors.append(f"{path}: histogram {family} buckets not cumulative")
            return
        prev = value
    if not les or les[-1][0] != math.inf:
        errors.append(f"{path}: histogram {family} missing le=\"+Inf\" bucket")
        return
    counts = by_name.get(family + "_count", [])
    if counts and counts[0][1] != les[-1][1]:
        errors.append(
            f"{path}: histogram {family} +Inf bucket {les[-1][1]} "
            f"!= _count {counts[0][1]}"
        )


# ------------------------------------------------------------------ cli


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--journal", help="journal JSONL file to validate")
    parser.add_argument("--trace", help="Chrome trace JSON file to validate")
    parser.add_argument("--prom", help="Prometheus exposition file to validate")
    parser.add_argument(
        "--schemas",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "schemas"),
        help="directory holding *.schema.json (default: alongside this script)",
    )
    args = parser.parse_args()
    if not (args.journal or args.trace or args.prom):
        parser.error("nothing to do: pass --journal/--trace/--prom")

    errors = []
    if args.journal:
        n = validate_journal(args.journal, args.schemas, errors)
        print(f"journal: {args.journal}: {n} entries")
    if args.trace:
        n = validate_trace(args.trace, args.schemas, errors)
        print(f"trace: {args.trace}: {n} spans")
    if args.prom:
        n = validate_prom(args.prom, errors)
        print(f"prom: {args.prom}: {n} samples")

    if errors:
        print(f"FAILED: {len(errors)} problem(s)", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
