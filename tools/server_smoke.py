#!/usr/bin/env python3
"""Concurrent smoke test for bagalgd. Stdlib only.

Starts the server, then drives it from N concurrent sessions issuing a
mixed statement diet — well-formed queries, budget-refused queries,
deadline-tripped queries, and malformed requests — and asserts the
robustness contract:

  * every request ends in a typed outcome (HTTP status + JSON error
    envelope), never a hang or an untyped connection drop*;
  * the server process survives the whole run (no crash, no abort);
  * /metrics stays a valid-looking Prometheus exposition;
  * SIGTERM at the end drains cleanly with exit code 0.

(*) When BAGALG_FAULT=io:... is armed, injected disconnects legally tear
connections mid-request; the client retries those (bounded) and they must
show up in the server's io_errors counter rather than crash it. Run the
chaos variant as:

  BAGALG_FAULT=io:p=0.05:seed=7 python3 tools/server_smoke.py \
      --binary build/examples/bagalgd --sessions 32 --requests 1000
"""

import argparse
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

# 16 atoms: pow() preflight-estimates 2^16 = 65536 <= the server budget
# (100000), so it runs — and trips its 10ms deadline mid-enumeration.
BIG = "{{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p}}"
# 17 atoms: pow() preflight-estimates 2^17 = 131072 > the budget, so the
# governor refuses it before execution (E001 -> 422).
BIGGER = "{{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p,q}}"

# (payload-maker, set of acceptable HTTP statuses)
def statement_mix(session, i):
    kind = i % 5
    if kind == 0:  # plain success
        return ({"session": session, "statement": "count pow('{{a,b,c}})"},
                {200})
    if kind == 1:  # exec engine path
        return ({"session": session,
                 "statement": "exec uplus('{{a, b}}, '{{b, c}})"}, {200})
    if kind == 2:  # budget refusal (server started with --budget)
        return ({"session": session, "statement": f"eval pow('{BIGGER})"},
                {422})
    if kind == 3:  # deadline trip
        return ({"session": session,
                 "statement": f"count pow('{BIG})",
                 "timeout_ms": 10}, {504})
    # malformed statement: typed 400
    return ({"session": session, "statement": "eval (("}, {400})


class Client(threading.Thread):
    """One session's worth of sequential requests, with bounded retries
    for connection-level failures (expected under io fault injection) and
    retryable server responses (429/503)."""

    def __init__(self, port, session, requests, stats, lock):
        super().__init__()
        self.port = port
        self.session = session
        self.requests = requests
        self.stats = stats
        self.lock = lock
        self.failures = []

    def post(self, payload):
        body = json.dumps(payload)
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            conn.request("POST", "/v1/statement", body,
                         {"Content-Type": "application/json"})
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def run(self):
        for i in range(self.requests):
            payload, want = statement_mix(self.session, i)
            outcome = None
            for _attempt in range(25):
                try:
                    status, _body = self.post(payload)
                except OSError:
                    # Torn connection (injected disconnect): retry.
                    with self.lock:
                        self.stats["torn"] += 1
                    time.sleep(0.01)
                    continue
                if status in (429, 503):
                    # Shed: retryable by contract.
                    with self.lock:
                        self.stats["shed"] += 1
                    time.sleep(0.05)
                    continue
                outcome = status
                break
            if outcome is None:
                self.failures.append(f"{self.session}#{i}: no typed outcome")
            elif outcome not in want:
                self.failures.append(
                    f"{self.session}#{i}: HTTP {outcome}, wanted {want}")
            with self.lock:
                self.stats[outcome] = self.stats.get(outcome, 0) + 1


def fetch(port, path, tries=25):
    for _ in range(tries):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            return resp.status, resp.read().decode("utf-8", "replace")
        except OSError:
            time.sleep(0.02)
        finally:
            conn.close()
    return 0, ""


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", required=True)
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--requests", type=int, default=1000,
                        help="total requests across all sessions")
    args = parser.parse_args()

    per_session = max(1, args.requests // args.sessions)
    fault = os.environ.get("BAGALG_FAULT", "")
    print(f"smoke: {args.sessions} sessions x {per_session} requests"
          f" (BAGALG_FAULT={fault or 'off'})")

    proc = subprocess.Popen(
        [args.binary, "--port=0", "--budget=100000", "--executors=8",
         "--queue=128"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        start_new_session=True)
    try:
        line = proc.stdout.readline().strip()
        if not line.startswith("bagalgd listening on "):
            print(f"FAIL: bad banner: {line!r}", file=sys.stderr)
            return 1
        port = int(line.rsplit(":", 1)[1])

        stats = {"torn": 0, "shed": 0}
        lock = threading.Lock()
        clients = [
            Client(port, f"smoke{i}", per_session, stats, lock)
            for i in range(args.sessions)
        ]
        start = time.time()
        for c in clients:
            c.start()
        for c in clients:
            c.join()
        wall = time.time() - start

        failures = [f for c in clients for f in c.failures]
        if proc.poll() is not None:
            print(f"FAIL: server died mid-run (exit {proc.poll()}):\n"
                  f"{proc.stderr.read()}", file=sys.stderr)
            return 1

        status, metrics = fetch(port, "/metrics")
        if status != 200 or "bagalg_server_requests_total" not in metrics:
            failures.append(f"/metrics unhealthy: HTTP {status}")
        for needed in ("# TYPE bagalg_server_requests_total counter",
                       "bagalg_server_io_errors_total"):
            if needed not in metrics:
                failures.append(f"/metrics missing {needed!r}")
        status, health = fetch(port, "/healthz")
        if status != 200 or '"status":"serving"' not in health:
            failures.append(f"/healthz unhealthy: HTTP {status} {health!r}")

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("server did not drain within 60s of SIGTERM")
            code = -1
        if code != 0:
            failures.append(f"server exited {code} after SIGTERM, wanted 0")
        drain_line = proc.stderr.read().strip().splitlines()
        print(f"smoke: {args.sessions * per_session} requests in "
              f"{wall:.1f}s; outcomes={stats}")
        if drain_line:
            print(f"smoke: {drain_line[-1]}")

        if failures:
            print(f"FAILED: {len(failures)} problem(s)", file=sys.stderr)
            for f in failures[:40]:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
