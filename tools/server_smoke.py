#!/usr/bin/env python3
"""Concurrent smoke test for bagalgd. Stdlib only.

Starts the server, then drives it from N concurrent keep-alive sessions
issuing a mixed statement diet — well-formed queries, budget-refused
queries, deadline-tripped queries, and malformed requests — and asserts
the robustness contract:

  * every request ends in a typed outcome (HTTP status + JSON error
    envelope), never a hang or an untyped connection drop*;
  * each client holds one persistent connection and the server actually
    reuses it (per-connection request counts are reported and checked);
  * a BAG1 binary statement frame (built with struct.pack, no C++
    involved) round-trips on the wire path;
  * the server process survives the whole run (no crash, no abort);
  * /metrics stays a valid Prometheus exposition (validate_obs.py) and
    exposes the event-loop gauges (bagalg_server_epoll_*);
  * SIGTERM at the end drains cleanly with exit code 0.

(*) When BAGALG_FAULT=io:... is armed, injected disconnects legally tear
connections mid-request; the client retries those (bounded) and they must
show up in the server's io_errors counter rather than crash it. Run the
chaos variant as:

  BAGALG_FAULT=io:p=0.05:seed=7 python3 tools/server_smoke.py \
      --binary build/examples/bagalgd --sessions 32 --requests 1000
"""

import argparse
import http.client
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time

# 16 atoms: pow() preflight-estimates 2^16 = 65536 <= the server budget
# (100000), so it runs — and trips its 10ms deadline mid-enumeration.
BIG = "{{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p}}"
# 17 atoms: pow() preflight-estimates 2^17 = 131072 > the budget, so the
# governor refuses it before execution (E001 -> 422).
BIGGER = "{{a,b,c,d,e,f,g,h,i,j,k,l,m,n,o,p,q}}"

# (payload-maker, set of acceptable HTTP statuses)
def statement_mix(session, i):
    kind = i % 5
    if kind == 0:  # plain success
        return ({"session": session, "statement": "count pow('{{a,b,c}})"},
                {200})
    if kind == 1:  # exec engine path
        return ({"session": session,
                 "statement": "exec uplus('{{a, b}}, '{{b, c}})"}, {200})
    if kind == 2:  # budget refusal (server started with --budget)
        return ({"session": session, "statement": f"eval pow('{BIGGER})"},
                {422})
    if kind == 3:  # deadline trip
        return ({"session": session,
                 "statement": f"count pow('{BIG})",
                 "timeout_ms": 10}, {504})
    # malformed statement: typed 400
    return ({"session": session, "statement": "eval (("}, {400})


class Client(threading.Thread):
    """One session's worth of sequential requests over a persistent
    keep-alive connection, with bounded retries for connection-level
    failures (expected under io fault injection) and retryable server
    responses (429/503). Records how many requests each connection
    served before it was closed or torn."""

    def __init__(self, port, session, requests, stats, lock):
        super().__init__()
        self.port = port
        self.session = session
        self.requests = requests
        self.stats = stats
        self.lock = lock
        self.failures = []
        self.conn = None
        self.conn_requests = 0
        self.conn_history = []  # requests served per finished connection

    def drop_conn(self):
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.conn_requests:
            self.conn_history.append(self.conn_requests)
            self.conn_requests = 0

    def post(self, payload):
        body = json.dumps(payload)
        if self.conn is None:
            self.conn = http.client.HTTPConnection(
                "127.0.0.1", self.port, timeout=60)
        self.conn.request("POST", "/v1/statement", body,
                          {"Content-Type": "application/json"})
        resp = self.conn.getresponse()
        data = resp.read()  # drain fully so the connection can be reused
        self.conn_requests += 1
        if resp.will_close:
            self.drop_conn()
        return resp.status, data

    def run(self):
        for i in range(self.requests):
            payload, want = statement_mix(self.session, i)
            outcome = None
            for _attempt in range(25):
                try:
                    status, _body = self.post(payload)
                except (OSError, http.client.HTTPException):
                    # Torn connection (injected disconnect): retry on a
                    # fresh one.
                    self.drop_conn()
                    with self.lock:
                        self.stats["torn"] += 1
                    time.sleep(0.01)
                    continue
                if status in (429, 503):
                    # Shed: retryable by contract.
                    with self.lock:
                        self.stats["shed"] += 1
                    time.sleep(0.05)
                    continue
                outcome = status
                break
            if outcome is None:
                self.failures.append(f"{self.session}#{i}: no typed outcome")
            elif outcome not in want:
                self.failures.append(
                    f"{self.session}#{i}: HTTP {outcome}, wanted {want}")
            with self.lock:
                self.stats[outcome] = self.stats.get(outcome, 0) + 1
        self.drop_conn()


def bag1_probe(port, failures, fault_armed):
    """Round-trips one BAG1 binary statement built with struct.pack —
    frame: 'BAG1' magic, version 1, format 2 (binary), two reserved
    bytes, u32-LE payload length; payload: len-prefixed session and
    statement strings plus u64-LE timeout/memlimit."""

    def lp(b):
        return struct.pack("<I", len(b)) + b

    payload = (lp(b"smokebag1") + lp(b"count '{{a, b}}") +
               struct.pack("<QQ", 0, 0))
    frame = (b"BAG1" + bytes([1, 2, 0, 0]) +
             struct.pack("<I", len(payload)) + payload)
    request = (b"POST /v1/statement HTTP/1.1\r\nHost: smoke\r\n"
               b"Content-Type: application/x-bag1\r\n"
               b"Content-Length: " + str(len(frame)).encode() +
               b"\r\n\r\n" + frame)
    for _attempt in range(10):
        try:
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=30) as sock:
                sock.sendall(request)
                buf = b""
                while b"\r\n\r\n" not in buf:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise OSError("eof before response head")
                    buf += chunk
                head, _, body = buf.partition(b"\r\n\r\n")
                length = next(int(line.split(b":")[1])
                              for line in head.split(b"\r\n")
                              if line.lower().startswith(b"content-length"))
                while len(body) < length:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise OSError("eof before response body")
                    body += chunk
                body = body[:length]
        except OSError:
            time.sleep(0.02)  # injected tear; retry
            continue
        if b" 200 " not in head.split(b"\r\n", 1)[0]:
            failures.append(f"bag1: HTTP {head.split()[1:2]}, wanted 200")
            return
        if body[:4] != b"BAG1" or body[4] != 1 or body[5] != 2:
            failures.append(f"bag1: bad response frame head {body[:6]!r}")
            return
        payload = body[12:12 + struct.unpack_from("<I", body, 8)[0]]
        ok = payload[0]
        outcome_len = struct.unpack_from("<I", payload, 1)[0]
        outcome = payload[5:5 + outcome_len]
        if ok != 1 or outcome != b"ok":
            failures.append(f"bag1: ok={ok} outcome={outcome!r}")
        return
    if not fault_armed:
        failures.append("bag1: no typed outcome after 10 attempts")


def fetch(port, path, tries=25):
    for _ in range(tries):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            return resp.status, resp.read().decode("utf-8", "replace")
        except OSError:
            time.sleep(0.02)
        finally:
            conn.close()
    return 0, ""


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", required=True)
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--requests", type=int, default=1000,
                        help="total requests across all sessions")
    args = parser.parse_args()

    per_session = max(1, args.requests // args.sessions)
    fault = os.environ.get("BAGALG_FAULT", "")
    print(f"smoke: {args.sessions} sessions x {per_session} requests"
          f" (BAGALG_FAULT={fault or 'off'})")

    proc = subprocess.Popen(
        [args.binary, "--port=0", "--budget=100000", "--executors=8",
         f"--queue={max(128, args.sessions)}",
         f"--max-sessions={max(128, 2 * args.sessions)}"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        start_new_session=True)
    try:
        line = proc.stdout.readline().strip()
        if not line.startswith("bagalgd listening on "):
            print(f"FAIL: bad banner: {line!r}", file=sys.stderr)
            return 1
        port = int(line.rsplit(":", 1)[1])

        stats = {"torn": 0, "shed": 0}
        lock = threading.Lock()
        clients = [
            Client(port, f"smoke{i}", per_session, stats, lock)
            for i in range(args.sessions)
        ]
        start = time.time()
        for c in clients:
            c.start()
        for c in clients:
            c.join()
        wall = time.time() - start

        failures = [f for c in clients for f in c.failures]
        if proc.poll() is not None:
            print(f"FAIL: server died mid-run (exit {proc.poll()}):\n"
                  f"{proc.stderr.read()}", file=sys.stderr)
            return 1

        bag1_probe(port, failures, fault_armed=bool(fault))

        status, metrics = fetch(port, "/metrics")
        if status != 200 or "bagalg_server_requests_total" not in metrics:
            failures.append(f"/metrics unhealthy: HTTP {status}")
        for needed in ("# TYPE bagalg_server_requests_total counter",
                       "bagalg_server_io_errors_total",
                       "bagalg_server_epoll_fds",
                       "bagalg_server_epoll_ready_depth",
                       "bagalg_server_epoll_loop_iter_us_bucket",
                       "bagalg_server_conn_state_reading",
                       "bagalg_server_http_keepalive_reuses_total",
                       "bagalg_server_wire_bag1_requests_total"):
            if needed not in metrics:
                failures.append(f"/metrics missing {needed!r}")
        # The exposition must parse as real Prometheus text, not just
        # contain the right substrings.
        validator = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                 "validate_obs.py")
        with tempfile.NamedTemporaryFile("w", suffix=".prom",
                                         delete=False) as prom:
            prom.write(metrics)
            prom_path = prom.name
        try:
            check = subprocess.run(
                [sys.executable, validator, "--prom", prom_path],
                capture_output=True, text=True)
            if check.returncode != 0:
                failures.append(
                    f"validate_obs --prom failed: {check.stderr.strip()}")
        finally:
            os.unlink(prom_path)
        status, health = fetch(port, "/healthz")
        if status != 200 or '"status":"serving"' not in health:
            failures.append(f"/healthz unhealthy: HTTP {status} {health!r}")

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("server did not drain within 60s of SIGTERM")
            code = -1
        if code != 0:
            failures.append(f"server exited {code} after SIGTERM, wanted 0")
        drain_line = proc.stderr.read().strip().splitlines()
        print(f"smoke: {args.sessions * per_session} requests in "
              f"{wall:.1f}s; outcomes={stats}")
        conns = [n for c in clients for n in c.conn_history]
        if conns:
            print(f"smoke: {len(conns)} connections served "
                  f"{sum(conns)} requests "
                  f"(per-connection mean={sum(conns) / len(conns):.1f} "
                  f"max={max(conns)})")
        if not fault and per_session > 1 and conns and \
                max(conns) < per_session:
            failures.append(
                f"keep-alive not reused: best connection served only "
                f"{max(conns)}/{per_session} requests")
        if drain_line:
            print(f"smoke: {drain_line[-1]}")

        if failures:
            print(f"FAILED: {len(failures)} problem(s)", file=sys.stderr)
            for f in failures[:40]:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
